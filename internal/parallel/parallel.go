// Package parallel is a small, deterministic map/shuffle/reduce
// framework over goroutines — the stand-in for the MapReduce clusters
// used by the scale experiments the Big Data Integration tutorial
// surveys. It exercises the same logical structure (partitioning,
// key-grouped shuffle, reduce skew) on shared memory.
package parallel

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
)

// KV is one key/value pair flowing between map and reduce.
type KV struct {
	Key   string
	Value interface{}
}

// MapFunc consumes one input item and emits zero or more pairs.
type MapFunc func(item interface{}, emit func(KV))

// ReduceFunc consumes one key and all its values and emits zero or more
// outputs.
type ReduceFunc func(key string, values []interface{}, emit func(interface{}))

// Config controls a job run.
type Config struct {
	Workers int // default runtime.NumCPU()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// Run executes a full map→shuffle→reduce job over items and returns the
// reducer outputs. Output order is deterministic: reduce keys are
// processed in sorted order and outputs are concatenated in that order,
// regardless of worker count.
func Run(cfg Config, items []interface{}, m MapFunc, r ReduceFunc) []interface{} {
	grouped := mapAndShuffle(cfg, items, m)

	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Reduce in parallel, preserving key order in the output.
	outs := make([][]interface{}, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r(k, grouped[k], func(v interface{}) { outs[i] = append(outs[i], v) })
		}(i, k)
	}
	wg.Wait()

	var flat []interface{}
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return flat
}

// mapAndShuffle runs the map phase over items with the configured
// worker count and groups emissions by key. Within a key, values appear
// in input order (stable shuffle), so results do not depend on worker
// scheduling.
func mapAndShuffle(cfg Config, items []interface{}, m MapFunc) map[string][]interface{} {
	type emission struct {
		kv  KV
		seq int // input index, for stable ordering within a key
	}
	w := cfg.workers()
	emissionsPer := make([][]emission, len(items))

	var wg sync.WaitGroup
	chunk := (len(items) + w - 1) / w
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(items); start += chunk {
		end := start + chunk
		if end > len(items) {
			end = len(items)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				idx := i
				m(items[idx], func(kv KV) {
					emissionsPer[idx] = append(emissionsPer[idx], emission{kv: kv, seq: idx})
				})
			}
		}(start, end)
	}
	wg.Wait()

	grouped := map[string][]interface{}{}
	for _, ems := range emissionsPer {
		for _, e := range ems {
			grouped[e.kv.Key] = append(grouped[e.kv.Key], e.kv.Value)
		}
	}
	return grouped
}

// Partition assigns a key to one of n buckets by FNV hash — the
// hash-partitioner used when fanning records out to blocking workers.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// ForEach applies f to every index in [0,n) using the configured number
// of workers, blocking until done. It is the plain data-parallel loop
// used by pairwise matching.
func ForEach(cfg Config, n int, f func(i int)) {
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	// Static contiguous ranges: negligible coordination overhead, good
	// balance for the uniform per-item costs of pairwise matching, and
	// no false sharing when workers write result slices by index.
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				f(i)
			}
		}(start, end)
	}
	wg.Wait()
}

// MapSlice applies f to every element of a string slice in parallel and
// returns outputs in input order.
func MapSlice[T any](cfg Config, in []string, f func(s string) T) []T {
	out := make([]T, len(in))
	ForEach(cfg, len(in), func(i int) { out[i] = f(in[i]) })
	return out
}

// Errgroup runs fns concurrently and returns the first error.
func Errgroup(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parallel: task %d: %w", i, err)
		}
	}
	return nil
}
