package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func wordCount(docs []string, workers int) map[string]int {
	out := Must(Run(Config{Workers: workers}, docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(key string, values []int, emit func([2]any)) {
			emit([2]any{key, len(values)})
		}))
	counts := map[string]int{}
	for _, o := range out {
		counts[o[0].(string)] = o[1].(int)
	}
	return counts
}

func TestRunWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	got := wordCount(docs, 4)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	docs := []string{"x y z", "x x", "y", "z z z", "w x y z"}
	base := wordCount(docs, 1)
	for _, w := range []int{2, 3, 8} {
		if got := wordCount(docs, w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d got %v, want %v", w, got, base)
		}
	}
}

// TestRunByteIdenticalOnSeededCorpus is the determinism regression
// test: a seeded high-cardinality workload must render byte-identically
// for workers ∈ {1, 4, NumCPU} — output order included, not just
// grouped content.
func TestRunByteIdenticalOnSeededCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	docs := make([]string, 500)
	for i := range docs {
		var b strings.Builder
		for j := 0; j < 1+rng.Intn(8); j++ {
			fmt.Fprintf(&b, "tok%03d ", rng.Intn(400))
		}
		docs[i] = b.String()
	}
	render := func(workers int) string {
		out := Must(Run(Config{Workers: workers}, docs,
			func(doc string, emit func(string, int)) {
				for _, w := range strings.Fields(doc) {
					emit(w, len(w))
				}
			},
			func(key string, values []int, emit func(string)) {
				sum := 0
				for _, v := range values {
					sum += v
				}
				emit(fmt.Sprintf("%s=%d/%d", key, len(values), sum))
			}))
		return strings.Join(out, ";")
	}
	base := render(1)
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := render(w); got != base {
			t.Errorf("workers=%d output differs from single-worker run", w)
		}
	}
}

// TestRunValuesInInputOrder pins the stable-shuffle guarantee: within a
// key, values arrive at the reducer in input order.
func TestRunValuesInInputOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	out := Must(Run(Config{Workers: 8}, items,
		func(i int, emit func(string, int)) { emit("k", i) },
		func(key string, values []int, emit func([]int)) { emit(values) }))
	if len(out) != 1 {
		t.Fatalf("want 1 output, got %d", len(out))
	}
	if !reflect.DeepEqual(out[0], items) {
		t.Errorf("values not in input order: %v", out[0])
	}
}

func TestRunOutputOrderSorted(t *testing.T) {
	out := Must(Run(Config{Workers: 4}, []string{"b", "a", "c"},
		func(item string, emit func(string, string)) { emit(item, item) },
		func(key string, values []string, emit func(string)) { emit(key) }))
	if !reflect.DeepEqual(out, []string{"a", "b", "c"}) {
		t.Errorf("reduce output order = %v, want sorted keys", out)
	}
}

func TestRunIntKeys(t *testing.T) {
	out := Must(Run(Config{Workers: 4}, []int{5, 3, 5, 1},
		func(item int, emit func(int, int)) { emit(item, 1) },
		func(key int, values []int, emit func(int)) { emit(key * len(values)) }))
	if !reflect.DeepEqual(out, []int{1, 3, 10}) {
		t.Errorf("int-keyed run = %v, want [1 3 10]", out)
	}
}

func TestRunEmptyInput(t *testing.T) {
	out, err := Run(Config{}, nil,
		func(item string, emit func(string, int)) { t.Fatal("map called on empty input") },
		func(key string, values []int, emit func(int)) { t.Fatal("reduce called") })
	if err != nil {
		t.Fatalf("empty input errored: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("want empty output, got %v", out)
	}
}

// TestRunBoundedReduceGoroutines pins the satellite fix: reducing many
// keys must not spawn a goroutine per key.
func TestRunBoundedReduceGoroutines(t *testing.T) {
	items := make([]int, 20000)
	for i := range items {
		items[i] = i
	}
	before := runtime.NumGoroutine()
	var peak atomic.Int64
	Must(Run(Config{Workers: 4}, items,
		func(i int, emit func(int, int)) { emit(i, i) }, // 20k distinct keys
		func(key int, values []int, emit func(int)) {
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			emit(key)
		}))
	if p := peak.Load(); p > int64(before+16) {
		t.Errorf("reduce phase reached %d goroutines (started at %d); want a bounded pool", p, before)
	}
}

func TestPartitionStableAndBounded(t *testing.T) {
	f := func(key string, n uint8) bool {
		buckets := int(n%16) + 1
		p := Partition(key, buckets)
		return p >= 0 && p < buckets && p == Partition(key, buckets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Partition("anything", 1) != 0 || Partition("anything", 0) != 0 {
		t.Error("degenerate bucket counts must map to 0")
	}
}

func TestPartitionSpreads(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[Partition(strings.Repeat("k", i+1), 8)] = true
	}
	if len(seen) < 6 {
		t.Errorf("partition used only %d of 8 buckets", len(seen))
	}
}

func TestForEachCoversAll(t *testing.T) {
	var n int64
	hits := make([]int64, 1000)
	if err := ForEach(Config{Workers: 7}, 1000, func(i int) {
		atomic.AddInt64(&hits[i], 1)
		atomic.AddInt64(&n, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("ran %d of 1000", n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

// TestForEachDeterministicByIndex pins ForEach's contract for the
// matching stage: results written by index are identical for any
// worker count, even under heavily skewed per-item costs.
func TestForEachDeterministicByIndex(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(7))
	cost := make([]int, n)
	for i := range cost {
		if rng.Intn(20) == 0 {
			cost[i] = 2000 // rare hot items: skew the chunks
		} else {
			cost[i] = 10
		}
	}
	run := func(workers int) []int {
		out := make([]int, n)
		Must0(ForEach(Config{Workers: workers}, n, func(i int) {
			acc := i
			for j := 0; j < cost[i]; j++ {
				acc = acc*31 + j
			}
			out[i] = acc
		}))
		return out
	}
	base := run(1)
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: per-index results differ from sequential run", w)
		}
	}
}

func TestForEachSingleWorker(t *testing.T) {
	order := []int{}
	Must0(ForEach(Config{Workers: 1}, 5, func(i int) { order = append(order, i) }))
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("single worker must run in order, got %v", order)
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out := Must(MapSlice(Config{Workers: 3}, in, func(s string) int { return len(s) }))
	if !reflect.DeepEqual(out, []int{1, 2, 3}) {
		t.Errorf("MapSlice = %v", out)
	}
	doubled := Must(MapSlice(Config{Workers: 2}, []int{1, 2, 3}, func(i int) int { return 2 * i }))
	if !reflect.DeepEqual(doubled, []int{2, 4, 6}) {
		t.Errorf("MapSlice over ints = %v", doubled)
	}
}

func TestErrgroup(t *testing.T) {
	sentinel := errors.New("boom")
	err := Errgroup(
		func() error { return nil },
		func() error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("want wrapped sentinel, got %v", err)
	}
	if err := Errgroup(func() error { return nil }); err != nil {
		t.Errorf("all-nil must return nil, got %v", err)
	}
}

// TestErrgroupPanic pins that a panicking task surfaces as a
// *PanicError instead of crashing the process.
func TestErrgroupPanic(t *testing.T) {
	err := Errgroup(
		func() error { return nil },
		func() error { panic("task exploded") },
	)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "task exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// TestForEachPair checks the triangular decode: every unordered pair
// (i, j), i < j, is visited exactly once, k is its lexicographic rank,
// and the visit set is identical for any worker count.
func TestForEachPair(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 20} {
		for _, w := range []int{1, 2, 8} {
			total := n * (n - 1) / 2
			if total < 0 {
				total = 0
			}
			got := make([][2]int, total)
			seen := make([]bool, total)
			Must0(ForEachPair(Config{Workers: w}, n, func(k, i, j int) {
				if seen[k] {
					t.Fatalf("n=%d workers=%d: slot %d visited twice", n, w, k)
				}
				seen[k] = true
				got[k] = [2]int{i, j}
			}))
			k := 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if !seen[k] || got[k] != [2]int{i, j} {
						t.Fatalf("n=%d workers=%d: slot %d = %v (seen=%v), want (%d,%d)",
							n, w, k, got[k], seen[k], i, j)
					}
					k++
				}
			}
		}
	}
}

// TestForEachPanicReturnsError is the crash-safety test: a panicking
// body must come back as a *PanicError from ForEach, for both the
// sequential and the parallel scheduler, with the panic value and a
// captured stack attached.
func TestForEachPanicReturnsError(t *testing.T) {
	for _, w := range []int{1, 8} {
		err := ForEach(Config{Workers: w}, 1000, func(i int) {
			if i == 437 {
				panic("poisoned record")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", w, err)
		}
		if pe.Value != "poisoned record" {
			t.Errorf("workers=%d: panic value = %v", w, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", w)
		}
		if !strings.Contains(pe.Error(), "poisoned record") {
			t.Errorf("workers=%d: Error() = %q", w, pe.Error())
		}
	}
}

// TestRunPanicReturnsError pins crash safety through the full
// map/shuffle/reduce job: panics in either phase become errors.
func TestRunPanicReturnsError(t *testing.T) {
	_, err := Run(Config{Workers: 4}, []int{1, 2, 3},
		func(i int, emit func(int, int)) {
			if i == 2 {
				panic("map panic")
			}
			emit(i, i)
		},
		func(k int, vs []int, emit func(int)) { emit(k) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("map-phase panic: want *PanicError, got %v", err)
	}
	_, err = Run(Config{Workers: 4}, []int{1, 2, 3},
		func(i int, emit func(int, int)) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { panic("reduce panic") })
	if !errors.As(err, &pe) {
		t.Fatalf("reduce-phase panic: want *PanicError, got %v", err)
	}
}

// TestForEachCancelledBeforeStart pins the fast path: an already
// cancelled context returns immediately without running any index.
func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 8} {
		var ran atomic.Int64
		err := ForEach(Config{Workers: w, Ctx: ctx}, 10000, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d indexes ran under a pre-cancelled context", w, ran.Load())
		}
	}
}

// TestForEachCancelledMidRun cancels from inside the body and asserts
// the workers stop at the next chunk boundary: the context error comes
// back and a large tail of the index space never runs.
func TestForEachCancelledMidRun(t *testing.T) {
	const n = 1 << 20
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(Config{Workers: w, Ctx: ctx}, n, func(i int) {
			if ran.Add(1) == 1 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if got := ran.Load(); got > n/2 {
			t.Errorf("workers=%d: %d of %d indexes ran after cancellation", w, got, n)
		}
	}
}

// TestMapSliceDeadline pins that a context deadline aborts MapSlice
// with DeadlineExceeded rather than running to completion.
func TestMapSliceDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	in := make([]int, 1<<14)
	_, err := MapSlice(Config{Workers: 4, Ctx: ctx}, in, func(i int) int {
		time.Sleep(20 * time.Microsecond)
		return i
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestMust pins the bridge semantics used by the value-only legacy
// call chains: nil error passes the value through, non-nil panics.
func TestMust(t *testing.T) {
	if got := Must(42, nil); got != 42 {
		t.Errorf("Must(42, nil) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Must with an error must panic")
		}
	}()
	Must(0, errors.New("boom"))
}
