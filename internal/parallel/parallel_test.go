package parallel

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func wordCount(docs []string, workers int) map[string]int {
	items := make([]interface{}, len(docs))
	for i, d := range docs {
		items[i] = d
	}
	out := Run(Config{Workers: workers}, items,
		func(item interface{}, emit func(KV)) {
			for _, w := range strings.Fields(item.(string)) {
				emit(KV{Key: w, Value: 1})
			}
		},
		func(key string, values []interface{}, emit func(interface{})) {
			emit(KV{Key: key, Value: len(values)})
		})
	counts := map[string]int{}
	for _, o := range out {
		kv := o.(KV)
		counts[kv.Key] = kv.Value.(int)
	}
	return counts
}

func TestRunWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	got := wordCount(docs, 4)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	docs := []string{"x y z", "x x", "y", "z z z", "w x y z"}
	base := wordCount(docs, 1)
	for _, w := range []int{2, 3, 8} {
		if got := wordCount(docs, w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d got %v, want %v", w, got, base)
		}
	}
}

func TestRunOutputOrderSorted(t *testing.T) {
	items := []interface{}{"b", "a", "c"}
	out := Run(Config{Workers: 4}, items,
		func(item interface{}, emit func(KV)) { emit(KV{Key: item.(string), Value: item}) },
		func(key string, values []interface{}, emit func(interface{})) { emit(key) })
	got := make([]string, len(out))
	for i, o := range out {
		got[i] = o.(string)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("reduce output order = %v, want sorted keys", got)
	}
}

func TestRunEmptyInput(t *testing.T) {
	out := Run(Config{}, nil,
		func(item interface{}, emit func(KV)) { t.Fatal("map called on empty input") },
		func(key string, values []interface{}, emit func(interface{})) { t.Fatal("reduce called") })
	if len(out) != 0 {
		t.Errorf("want empty output, got %v", out)
	}
}

func TestPartitionStableAndBounded(t *testing.T) {
	f := func(key string, n uint8) bool {
		buckets := int(n%16) + 1
		p := Partition(key, buckets)
		return p >= 0 && p < buckets && p == Partition(key, buckets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Partition("anything", 1) != 0 || Partition("anything", 0) != 0 {
		t.Error("degenerate bucket counts must map to 0")
	}
}

func TestPartitionSpreads(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[Partition(strings.Repeat("k", i+1), 8)] = true
	}
	if len(seen) < 6 {
		t.Errorf("partition used only %d of 8 buckets", len(seen))
	}
}

func TestForEachCoversAll(t *testing.T) {
	var n int64
	hits := make([]int64, 1000)
	ForEach(Config{Workers: 7}, 1000, func(i int) {
		atomic.AddInt64(&hits[i], 1)
		atomic.AddInt64(&n, 1)
	})
	if n != 1000 {
		t.Fatalf("ran %d of 1000", n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForEachSingleWorker(t *testing.T) {
	order := []int{}
	ForEach(Config{Workers: 1}, 5, func(i int) { order = append(order, i) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("single worker must run in order, got %v", order)
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out := MapSlice(Config{Workers: 3}, in, func(s string) int { return len(s) })
	if !reflect.DeepEqual(out, []int{1, 2, 3}) {
		t.Errorf("MapSlice = %v", out)
	}
}

func TestErrgroup(t *testing.T) {
	sentinel := errors.New("boom")
	err := Errgroup(
		func() error { return nil },
		func() error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("want wrapped sentinel, got %v", err)
	}
	if err := Errgroup(func() error { return nil }); err != nil {
		t.Errorf("all-nil must return nil, got %v", err)
	}
}
