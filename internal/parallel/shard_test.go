package parallel

import (
	"errors"
	"fmt"
	"testing"
)

// cumOf builds the prefix-sum slice WeightedRanges consumes.
func cumOf(weights ...int) []int {
	cum := make([]int, len(weights)+1)
	for i, w := range weights {
		cum[i+1] = cum[i] + w
	}
	return cum
}

func TestWeightedRangesCoverExactlyOnce(t *testing.T) {
	cases := [][]int{
		{1, 1, 1, 1},
		{100, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 100},
		{0, 0, 5, 0, 0},
		{0, 0, 0},
		{7},
	}
	for _, weights := range cases {
		cum := cumOf(weights...)
		for shards := 1; shards <= len(weights)+2; shards++ {
			ranges := WeightedRanges(cum, shards)
			next := 0
			for _, r := range ranges {
				if r[0] != next {
					t.Fatalf("weights %v shards %d: range %v does not start at %d", weights, shards, r, next)
				}
				if r[0] >= r[1] {
					t.Fatalf("weights %v shards %d: empty range %v emitted", weights, shards, r)
				}
				next = r[1]
			}
			if next != len(weights) {
				t.Fatalf("weights %v shards %d: ranges %v cover [0,%d), want [0,%d)", weights, shards, ranges, next, len(weights))
			}
			if len(ranges) > shards {
				t.Fatalf("weights %v: got %d ranges for %d shards", weights, len(ranges), shards)
			}
		}
	}
}

func TestWeightedRangesBalanceByWeight(t *testing.T) {
	// 64 items of weight 1 plus one of weight 64: the heavy item must
	// get (roughly) a shard of its own rather than splitting by count.
	weights := make([]int, 65)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 64
	ranges := WeightedRanges(cumOf(weights...), 2)
	if len(ranges) != 2 {
		t.Fatalf("got %d ranges, want 2: %v", len(ranges), ranges)
	}
	if ranges[0] != [2]int{0, 1} {
		t.Fatalf("heavy item not isolated: first range %v", ranges[0])
	}
}

func TestWeightedRangesEmptyAndDegenerate(t *testing.T) {
	if got := WeightedRanges([]int{0}, 4); got != nil {
		t.Fatalf("no items: got %v, want nil", got)
	}
	if got := WeightedRanges(nil, 4); got != nil {
		t.Fatalf("nil cum: got %v, want nil", got)
	}
	if got := WeightedRanges(cumOf(3, 3), 0); len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Fatalf("shards<1 must clamp to one covering range, got %v", got)
	}
}

func TestWeightedRangesDeterministic(t *testing.T) {
	cum := cumOf(5, 1, 9, 2, 2, 8, 1, 1, 4)
	want := fmt.Sprint(WeightedRanges(cum, 4))
	for i := 0; i < 10; i++ {
		if got := fmt.Sprint(WeightedRanges(cum, 4)); got != want {
			t.Fatalf("run %d: %s != %s", i, got, want)
		}
	}
}

func TestReduceShardsOrderedForAnyWorkers(t *testing.T) {
	ranges := WeightedRanges(cumOf(1, 2, 3, 4, 5, 6, 7, 8), 4)
	for _, w := range []int{1, 2, 8} {
		var order []int
		var sums []int
		err := ReduceShards(Config{Workers: w}, ranges,
			func(shard, lo, hi int) int { return lo + hi },
			func(shard int, v int) error {
				order = append(order, shard)
				sums = append(sums, v)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for s := range ranges {
			if order[s] != s {
				t.Fatalf("workers %d: reduce order %v not shard order", w, order)
			}
			if want := ranges[s][0] + ranges[s][1]; sums[s] != want {
				t.Fatalf("workers %d: shard %d sum %d, want %d", w, s, sums[s], want)
			}
		}
	}
}

func TestReduceShardsReducerErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ReduceShards(Config{Workers: 2}, [][2]int{{0, 1}, {1, 2}, {2, 3}},
		func(shard, lo, hi int) int { return shard },
		func(shard int, v int) error {
			calls++
			if shard == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("reducer ran %d times, want 2 (abort at the failing shard)", calls)
	}
}
