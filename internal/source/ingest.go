package source

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// IngestConfig tunes the resilient ingestor. The zero value is usable.
type IngestConfig struct {
	// Workers bounds the fan-out over sources (0 = NumCPU). The
	// assembled dataset and Report are identical for any value.
	Workers int
	// Retries is the number of re-attempts after the first failed
	// fetch (so a source is tried at most Retries+1 times). Default 4.
	// Negative means no retries.
	Retries int
	// BaseBackoff is the first retry delay; each further retry doubles
	// it up to MaxBackoff, scaled by a deterministic per-(source,
	// attempt) jitter in [0.5, 1). Defaults 10ms and 500ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// SourceTimeout, when positive, bounds each individual fetch
	// attempt with its own deadline.
	SourceTimeout time.Duration
	// BreakerThreshold consecutive failures trip a source's circuit
	// breaker (default 3); BreakerCooldown is the open → half-open
	// delay (default 1s). Breakers persist across Ingest calls on the
	// same Ingestor, so a source that exhausted its retries once is
	// skipped outright by closely following calls.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MinSources is the minimum number of sources that must survive
	// for Ingest to succeed (default 1). Fewer survivors still return
	// the partial dataset and full report, alongside an error wrapping
	// ErrTooFewSources.
	MinSources int
	// Obs records "source." ingestion metrics when set (falling back
	// to the process default registry).
	Obs *obs.Registry
}

func (c *IngestConfig) defaults() {
	if c.Retries == 0 {
		c.Retries = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.MinSources <= 0 {
		c.MinSources = 1
	}
}

// Outcome is the per-source ingestion result.
type Outcome struct {
	SourceID string
	// State is "ok" (records ingested), "dropped" (all attempts
	// failed) or "skipped" (circuit breaker rejected the source before
	// any attempt).
	State string
	// Attempts is the number of fetches issued this call.
	Attempts int
	// Records ingested from this source (0 unless ok).
	Records int
	// Err describes the final failure ("" when ok).
	Err string
}

// Report summarises one Ingest call. All slices are sorted by source
// ID, so reports are byte-comparable across runs.
type Report struct {
	Total     int // sources offered
	Succeeded int // sources ingested
	// Dropped lists the sources absent from the dataset (dropped or
	// skipped); Degraded lists sources that succeeded only after
	// retrying.
	Dropped  []string
	Degraded []string
	// Records ingested and fetch attempts issued, summed over sources.
	Records  int
	Attempts int
	Outcomes []Outcome
}

// Ingestor fetches a fleet of sources with retries, backoff and
// circuit breaking, and assembles the survivors into a dataset.
// Breaker state persists across calls; an Ingestor must not be used by
// multiple goroutines concurrently.
type Ingestor struct {
	cfg      IngestConfig
	breakers map[string]*breaker

	// Test seams: the clock and the backoff sleeper.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewIngestor builds an ingestor, resolving config defaults.
func NewIngestor(cfg IngestConfig) *Ingestor {
	cfg.defaults()
	return &Ingestor{
		cfg:      cfg,
		breakers: map[string]*breaker{},
		now:      time.Now,
		sleep:    ctxSleep,
	}
}

// Config returns the resolved configuration.
func (ing *Ingestor) Config() IngestConfig { return ing.cfg }

// ctxSleep waits d or until ctx is done, whichever is first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay is the pre-jitter-scaled delay before retry `attempt`
// (1-based over retries): base·2^(attempt−1) capped at max, scaled by
// a deterministic jitter in [0.5, 1) derived from the source ID and
// attempt number — no shared RNG, so schedules are reproducible and
// independent of worker count.
func backoffDelay(id string, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv64(id) ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	frac := 0.5 + float64(h%1024)/2048
	return time.Duration(float64(d) * frac)
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fetchSafe calls Fetch with panic recovery, so one misbehaving source
// adapter degrades gracefully instead of killing the whole ingest.
func fetchSafe(ctx context.Context, s Source) (recs []*data.Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("source: fetch panic: %v", r)
		}
	}()
	return s.Fetch(ctx)
}

// Ingest fetches every source (bounded fan-out, sorted-ID order) and
// assembles the survivors into a dataset. It degrades gracefully:
// failing sources are retried with capped exponential backoff, then
// dropped, and the Report says exactly which sources were dropped,
// skipped or degraded and how many attempts each one cost. The call
// fails outright only when ctx is cancelled, a source ID is
// duplicated, or fewer than MinSources sources survive (the latter
// still returns the partial dataset and report).
func (ing *Ingestor) Ingest(ctx context.Context, sources []Source) (*data.Dataset, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sorted, err := sortSources(sources)
	if err != nil {
		return nil, nil, err
	}
	// Breakers are created up front on the driver goroutine; during the
	// fan-out each goroutine touches only its own source's breaker.
	for _, s := range sorted {
		id := s.Meta().ID
		if ing.breakers[id] == nil {
			ing.breakers[id] = newBreaker(ing.cfg.BreakerThreshold, ing.cfg.BreakerCooldown)
		}
	}

	results := make([]fetchResult, len(sorted))
	ferr := parallel.ForEach(parallel.Config{Workers: ing.cfg.Workers, Ctx: ctx}, len(sorted), func(i int) {
		src := sorted[i]
		id := src.Meta().ID
		results[i] = ing.ingestOne(ctx, id, src, ing.breakers[id])
	})
	if ferr != nil {
		return nil, nil, fmt.Errorf("source: ingest: %w", ferr)
	}

	reg := obs.OrDefault(ing.cfg.Obs)
	d := data.NewDataset()
	rep := &Report{Total: len(sorted)}
	for i, s := range sorted {
		r := results[i]
		rep.Outcomes = append(rep.Outcomes, r.out)
		rep.Attempts += r.out.Attempts
		if r.out.Attempts > 1 {
			reg.Counter("source.retries").Add(int64(r.out.Attempts - 1))
		}
		switch r.out.State {
		case "ok":
			rep.Succeeded++
			rep.Records += r.out.Records
			if r.out.Attempts > 1 {
				rep.Degraded = append(rep.Degraded, r.out.SourceID)
			}
			reg.Counter("source.fetch_ok").Inc()
			reg.Counter("source.records_salvaged").Add(int64(r.out.Records))
			if err := d.AddSource(s.Meta()); err != nil {
				return nil, nil, fmt.Errorf("source: ingest: %w", err)
			}
			for _, rec := range r.recs {
				if err := d.AddRecord(rec); err != nil {
					return nil, nil, fmt.Errorf("source: ingest %s: %w", r.out.SourceID, err)
				}
			}
		case "skipped":
			rep.Dropped = append(rep.Dropped, r.out.SourceID)
			reg.Counter("source.breaker_rejections").Inc()
		default: // dropped
			rep.Dropped = append(rep.Dropped, r.out.SourceID)
			reg.Counter("source.fetch_errors").Inc()
		}
	}
	reg.Counter("source.sources_dropped").Add(int64(len(rep.Dropped)))
	if rep.Succeeded < ing.cfg.MinSources {
		return d, rep, fmt.Errorf("source: %d/%d sources survived, need %d: %w",
			rep.Succeeded, rep.Total, ing.cfg.MinSources, ErrTooFewSources)
	}
	return d, rep, nil
}

// fetchResult pairs a source's outcome with its fetched records.
type fetchResult struct {
	out  Outcome
	recs []*data.Record
}

// ingestOne runs the retry/breaker loop for a single source.
func (ing *Ingestor) ingestOne(ctx context.Context, id string, src Source, br *breaker) (res fetchResult) {
	res.out = Outcome{SourceID: id}
	var lastErr error
	for attempt := 1; attempt <= ing.cfg.Retries+1; attempt++ {
		if !br.allow(ing.now()) {
			if res.out.Attempts == 0 {
				res.out.State = "skipped"
				res.out.Err = ErrBreakerOpen.Error()
				return res
			}
			lastErr = ErrBreakerOpen
			break
		}
		fctx, cancel := ctx, context.CancelFunc(func() {})
		if ing.cfg.SourceTimeout > 0 {
			fctx, cancel = context.WithTimeout(ctx, ing.cfg.SourceTimeout)
		}
		recs, err := fetchSafe(fctx, src)
		cancel()
		res.out.Attempts++
		if err == nil {
			br.success()
			res.out.State = "ok"
			res.out.Records = len(recs)
			res.recs = recs
			return res
		}
		br.failure(ing.now())
		lastErr = err
		// Permanent failures and run-context cancellation end the loop;
		// everything else (incl. per-attempt deadline overruns) retries.
		if errors.Is(err, ErrPermanent) || ctx.Err() != nil {
			break
		}
		if attempt <= ing.cfg.Retries {
			if ing.sleep(ctx, backoffDelay(id, attempt, ing.cfg.BaseBackoff, ing.cfg.MaxBackoff)) != nil {
				break
			}
		}
	}
	res.out.State = "dropped"
	if lastErr != nil {
		res.out.Err = lastErr.Error()
	}
	return res
}
