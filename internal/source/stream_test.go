package source

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

func streamWeb(seed int64) *data.Dataset {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 40})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 6, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
	})
	return web.Dataset
}

func TestWatchDeliversCanonicalSequence(t *testing.T) {
	d := streamWeb(1)
	src := FromDataset(d)[0]
	want := d.SourceRecords(src.Meta().ID)
	w := NewWatch(src, len(want), 7, 0)

	var got []*data.Record
	for !w.Done() {
		batch, err := w.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatal("live watch delivered an empty batch")
		}
		if len(batch) > 7 {
			t.Fatalf("batch of %d exceeds epoch size 7", len(batch))
		}
		got = append(got, batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("record %d = %s, want %s (order must be canonical)", i, got[i].ID, want[i].ID)
		}
	}
	if batch, err := w.Poll(context.Background()); batch != nil || err != nil {
		t.Fatalf("drained watch: %v %v", batch, err)
	}
}

// flakySource fails its first n fetches with a transient error and
// truncates the next m to a prefix, then behaves.
type flakySource struct {
	inner     *Static
	transient int
	truncated int
}

func (f *flakySource) Meta() *data.Source { return f.inner.Src }

func (f *flakySource) Fetch(ctx context.Context) ([]*data.Record, error) {
	if f.transient > 0 {
		f.transient--
		return nil, ErrTransient
	}
	if f.truncated > 0 {
		f.truncated--
		return f.inner.Recs[:len(f.inner.Recs)/2], nil
	}
	return f.inner.Fetch(ctx)
}

func TestWatchRefetchesThroughFaults(t *testing.T) {
	d := streamWeb(2)
	static := FromDataset(d)[0].(*Static)
	total := len(static.Recs)
	flaky := &flakySource{inner: static, transient: 2, truncated: 2}

	// Epoch covers the whole source, so truncated payloads can never
	// cover the window and must be refetched.
	w := NewWatch(flaky, total, total, 8)
	batch, err := w.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != total {
		t.Fatalf("delivered %d records, want %d", len(batch), total)
	}

	// With the retry budget below the fault count the poll must fail,
	// classifiably.
	flaky = &flakySource{inner: static, transient: 5}
	w = NewWatch(flaky, total, total, 3)
	if _, err := w.Poll(context.Background()); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	flaky = &flakySource{inner: static, truncated: 50}
	w = NewWatch(flaky, total, total, 3)
	if _, err := w.Poll(context.Background()); !errors.Is(err, ErrShortSource) {
		t.Fatalf("err = %v, want ErrShortSource", err)
	}
}

func TestWatchSeekResumesMidStream(t *testing.T) {
	d := streamWeb(3)
	src := FromDataset(d)[0]
	want := d.SourceRecords(src.Meta().ID)
	w := NewWatch(src, len(want), 5, 0)
	if _, err := w.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	cursor := w.Cursor()

	// A fresh watch seeked to the persisted cursor continues the exact
	// sequence.
	w2 := NewWatch(src, len(want), 5, 0)
	w2.Seek(cursor)
	batch, err := w2.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch {
		if r.ID != want[cursor+i].ID {
			t.Fatalf("resumed record %d = %s, want %s", i, r.ID, want[cursor+i].ID)
		}
	}
}

func TestStreamerEpochsAreDeterministic(t *testing.T) {
	d := streamWeb(4)

	drain := func() []Epoch {
		str, err := NewStreamer(context.Background(), FromDataset(d), StreamConfig{EpochSize: 9})
		if err != nil {
			t.Fatal(err)
		}
		defer str.Close()
		var eps []Epoch
		for ep := range str.C {
			eps = append(eps, ep)
		}
		if err := str.Err(); err != nil {
			t.Fatal(err)
		}
		return eps
	}

	a, b := drain(), drain()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("epoch counts %d vs %d", len(a), len(b))
	}
	total := 0
	for i := range a {
		if a[i].Seq != i {
			t.Errorf("epoch %d has seq %d", i, a[i].Seq)
		}
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("epoch %d sizes differ: %d vs %d", i, len(a[i].Records), len(b[i].Records))
		}
		for j := range a[i].Records {
			if a[i].Records[j].ID != b[i].Records[j].ID {
				t.Fatalf("epoch %d record %d differs across runs", i, j)
			}
		}
		total += len(a[i].Records)
	}
	if total != d.NumRecords() {
		t.Errorf("streamed %d records, want %d", total, d.NumRecords())
	}
	last := a[len(a)-1]
	for _, s := range d.Sources() {
		if last.Cursors[s.ID] != len(d.SourceRecords(s.ID)) {
			t.Errorf("final cursor for %s = %d, want %d", s.ID, last.Cursors[s.ID], len(d.SourceRecords(s.ID)))
		}
	}
}

func TestStreamerResumeFromCursors(t *testing.T) {
	d := streamWeb(5)
	fleet := FromDataset(d)

	full, err := NewStreamer(context.Background(), fleet, StreamConfig{EpochSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	var all []Epoch
	for ep := range full.C {
		all = append(all, ep)
	}
	if len(all) < 3 {
		t.Fatalf("want ≥3 epochs, got %d", len(all))
	}

	// Resume from the cursors of epoch k-1: the remaining epochs must be
	// identical to the uninterrupted run's tail, numbering included.
	k := len(all) / 2
	resumed, err := NewStreamer(context.Background(), fleet, StreamConfig{
		EpochSize: 4, Cursors: all[k-1].Cursors, StartSeq: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	i := k
	for ep := range resumed.C {
		if i >= len(all) {
			t.Fatal("resumed stream delivered extra epochs")
		}
		if ep.Seq != all[i].Seq {
			t.Errorf("resumed seq %d, want %d", ep.Seq, all[i].Seq)
		}
		if len(ep.Records) != len(all[i].Records) {
			t.Fatalf("resumed epoch %d sizes differ", i)
		}
		for j := range ep.Records {
			if ep.Records[j].ID != all[i].Records[j].ID {
				t.Fatalf("resumed epoch %d record %d differs", i, j)
			}
		}
		i++
	}
	if i != len(all) {
		t.Errorf("resumed stream stopped at %d, want %d", i, len(all))
	}
}

func TestStreamerRejectsUnknownTotals(t *testing.T) {
	d := streamWeb(6)
	static := FromDataset(d)[0].(*Static)
	wrapped := &flakySource{inner: static} // not a *Static: totals required
	if _, err := NewStreamer(context.Background(), []Source{wrapped}, StreamConfig{}); err == nil {
		t.Fatal("streamer accepted a wrapped source with no declared total")
	} else if !strings.Contains(err.Error(), "total") {
		t.Fatalf("err = %v", err)
	}
	str, err := NewStreamer(context.Background(), []Source{wrapped},
		StreamConfig{Totals: map[string]int{static.Src.ID: len(static.Recs)}})
	if err != nil {
		t.Fatal(err)
	}
	str.Close()
}
