package source_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/source"
	"repro/internal/source/faults"
)

// testWeb builds a small seeded source fleet.
func testWeb(t testing.TB) *datagen.Web {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: 7, NumEntities: 30, Categories: []string{"camera"},
	})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 8, NumSources: 12, DirtLevel: 1,
		IdentifierRate: 0.9, HeadFraction: 0.4, TailCoverage: 0.3,
	})
}

// fastCfg keeps retry schedules in the microsecond range for tests.
func fastCfg(workers int) source.IngestConfig {
	return source.IngestConfig{
		Workers:     workers,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
	}
}

func TestIngestCleanFleet(t *testing.T) {
	web := testWeb(t)
	srcs := source.FromWeb(web)
	d, rep, err := source.NewIngestor(fastCfg(4)).Ingest(context.Background(), srcs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if rep.Succeeded != len(srcs) || len(rep.Dropped) != 0 || len(rep.Degraded) != 0 {
		t.Fatalf("clean fleet report = %+v", rep)
	}
	if d.NumRecords() != web.Dataset.NumRecords() || d.NumSources() != web.Dataset.NumSources() {
		t.Fatalf("ingested %d/%d records, %d/%d sources",
			d.NumRecords(), web.Dataset.NumRecords(), d.NumSources(), web.Dataset.NumSources())
	}
	// The round trip preserves the dataset byte-for-byte.
	var got, want bytes.Buffer
	if err := d.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := web.Dataset.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("ingested dataset differs from the direct dataset")
	}
	if rep.Attempts != len(srcs) {
		t.Fatalf("clean fleet used %d attempts for %d sources", rep.Attempts, len(srcs))
	}
}

// TestIngestPartialDrop pins the graceful-degradation contract: under
// a heavy fault mix the ingest completes, and Report.Dropped lists
// exactly the sources absent from the assembled dataset.
func TestIngestPartialDrop(t *testing.T) {
	web := testWeb(t)
	fleet := faults.WrapAll(source.FromWeb(web), faults.Config{
		Seed:          99,
		TransientRate: 0.6, // ~0.6^3 chance a source exhausts 3 attempts
		DeadRate:      0.25,
	})
	cfg := fastCfg(4)
	cfg.Retries = 2
	d, rep, err := source.NewIngestor(cfg).Ingest(context.Background(), fleet)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(rep.Dropped) == 0 {
		t.Fatal("fault mix dropped nothing; test needs a harsher seed")
	}
	if rep.Succeeded == 0 {
		t.Fatal("fault mix killed every source; test needs a kinder seed")
	}
	// Dropped == sources absent from the dataset, exactly.
	var absent []string
	for _, s := range web.Dataset.Sources() {
		if d.Source(s.ID) == nil {
			absent = append(absent, s.ID)
		}
	}
	if fmt.Sprint(absent) != fmt.Sprint(rep.Dropped) {
		t.Fatalf("Dropped = %v, absent from dataset = %v", rep.Dropped, absent)
	}
	// Survivors carry all their records (no partial sources here: the
	// truncation fault is off).
	for _, s := range d.Sources() {
		if got, want := len(d.SourceRecords(s.ID)), len(web.Dataset.SourceRecords(s.ID)); got != want {
			t.Fatalf("source %s ingested %d/%d records", s.ID, got, want)
		}
	}
	if rep.Total != rep.Succeeded+len(rep.Dropped) {
		t.Fatalf("report does not balance: %+v", rep)
	}
}

// TestIngestDeterministic pins byte-identical datasets AND reports
// across 20 repeats and worker counts 1, 2 and 8, under a fault mix.
// Each repeat re-wraps the fleet: the injector's RNG state advances
// with every fetch, so reproducibility is anchored at Wrap time.
func TestIngestDeterministic(t *testing.T) {
	web := testWeb(t)
	base := source.FromWeb(web)
	fcfg := faults.Config{
		Seed:          4242,
		TransientRate: 0.4,
		DeadRate:      0.15,
		TruncateRate:  0.2,
		CorruptRate:   0.05,
	}
	run := func(workers int) (string, string) {
		cfg := fastCfg(workers)
		cfg.Retries = 3
		d, rep, err := source.NewIngestor(cfg).Ingest(context.Background(), faults.WrapAll(base, fcfg))
		if err != nil {
			t.Fatalf("Ingest(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		rj, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), string(rj)
	}
	wantD, wantR := run(1)
	for rep := 0; rep < 20; rep++ {
		for _, workers := range []int{1, 2, 8} {
			gotD, gotR := run(workers)
			if gotD != wantD {
				t.Fatalf("repeat %d workers %d: dataset diverged", rep, workers)
			}
			if gotR != wantR {
				t.Fatalf("repeat %d workers %d: report diverged:\n%s\nvs\n%s", rep, workers, gotR, wantR)
			}
		}
	}
}

func TestIngestMinSources(t *testing.T) {
	web := testWeb(t)
	fleet := faults.WrapAll(source.FromWeb(web), faults.Config{Seed: 1, DeadRate: 1})
	cfg := fastCfg(2)
	cfg.Retries = 1
	d, rep, err := source.NewIngestor(cfg).Ingest(context.Background(), fleet)
	if !errors.Is(err, source.ErrTooFewSources) {
		t.Fatalf("want ErrTooFewSources, got %v", err)
	}
	// The partial dataset and full report still come back.
	if d == nil || rep == nil {
		t.Fatal("partial results missing alongside ErrTooFewSources")
	}
	if rep.Succeeded != 0 || len(rep.Dropped) != rep.Total {
		t.Fatalf("all-dead fleet report = %+v", rep)
	}
	// Dead sources fail permanently: one attempt each, no retries.
	if rep.Attempts != rep.Total {
		t.Fatalf("permanent failures retried: %d attempts for %d sources", rep.Attempts, rep.Total)
	}
}

func TestIngestCancellation(t *testing.T) {
	web := testWeb(t)
	srcs := source.FromWeb(web)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := source.NewIngestor(fastCfg(4)).Ingest(ctx, srcs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestIngestDuplicateSourceID(t *testing.T) {
	s := &data.Source{ID: "dup"}
	fleet := []source.Source{&source.Static{Src: s}, &source.Static{Src: s}}
	if _, _, err := source.NewIngestor(fastCfg(1)).Ingest(context.Background(), fleet); err == nil {
		t.Fatal("duplicate source IDs must fail")
	}
}

// flaky fails its first n fetches with a transient error.
type flaky struct {
	src   *data.Source
	recs  []*data.Record
	fails int
	calls int
}

func (f *flaky) Meta() *data.Source { return f.src }
func (f *flaky) Fetch(ctx context.Context) ([]*data.Record, error) {
	f.calls++
	if f.calls <= f.fails {
		return nil, fmt.Errorf("flaky call %d: %w", f.calls, source.ErrTransient)
	}
	return f.recs, nil
}

func TestIngestRetriesRecover(t *testing.T) {
	src := &data.Source{ID: "s1"}
	rec := data.NewRecord("r1", "s1").Set("title", data.String("x"))
	fleet := []source.Source{&flaky{src: src, recs: []*data.Record{rec}, fails: 2}}
	cfg := fastCfg(1)
	cfg.Retries = 3
	d, rep, err := source.NewIngestor(cfg).Ingest(context.Background(), fleet)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if d.NumRecords() != 1 {
		t.Fatalf("recovered source lost its record: %d", d.NumRecords())
	}
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "s1" {
		t.Fatalf("Degraded = %v, want [s1]", rep.Degraded)
	}
	if rep.Outcomes[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rep.Outcomes[0].Attempts)
	}
}

// panicking is a misbehaving source adapter.
type panicking struct{ src *data.Source }

func (p *panicking) Meta() *data.Source { return p.src }
func (p *panicking) Fetch(ctx context.Context) ([]*data.Record, error) {
	panic("adapter bug")
}

func TestIngestFetchPanicIsDegradedNotFatal(t *testing.T) {
	good := &data.Source{ID: "good"}
	rec := data.NewRecord("g1", "good").Set("title", data.String("ok"))
	fleet := []source.Source{
		&panicking{src: &data.Source{ID: "bad"}},
		&source.Static{Src: good, Recs: []*data.Record{rec}},
	}
	cfg := fastCfg(2)
	cfg.Retries = 1
	d, rep, err := source.NewIngestor(cfg).Ingest(context.Background(), fleet)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if d.NumRecords() != 1 || rep.Succeeded != 1 {
		t.Fatalf("panicking adapter took down the fleet: %+v", rep)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0] != "bad" {
		t.Fatalf("Dropped = %v, want [bad]", rep.Dropped)
	}
	if !strings.Contains(rep.Outcomes[0].Err, "panic") {
		t.Fatalf("outcome should surface the panic, got %q", rep.Outcomes[0].Err)
	}
}

// TestBreakerOpensAndRecovers drives the circuit breaker with a fake
// clock: repeated failures trip it, calls inside the cooldown are
// skipped without touching the source, and after the cooldown a
// successful probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	src := &data.Source{ID: "s1"}
	rec := data.NewRecord("r1", "s1").Set("title", data.String("x"))
	f := &flaky{src: src, recs: []*data.Record{rec}, fails: 3}

	cfg := fastCfg(1)
	cfg.Retries = 2 // 3 attempts per Ingest = BreakerThreshold
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Minute
	ing := source.NewIngestor(cfg)
	clock := time.Unix(1000, 0)
	ing.SetClock(func() time.Time { return clock })

	// First call: three transient failures trip the breaker.
	_, rep, err := ing.Ingest(context.Background(), []source.Source{f})
	if err != nil && !errors.Is(err, source.ErrTooFewSources) {
		t.Fatalf("Ingest: %v", err)
	}
	if rep.Outcomes[0].State != "dropped" || rep.Outcomes[0].Attempts != 3 {
		t.Fatalf("first call outcome = %+v", rep.Outcomes[0])
	}

	// Second call inside the cooldown: skipped, source untouched.
	calls := f.calls
	_, rep, err = ing.Ingest(context.Background(), []source.Source{f})
	if err == nil || !errors.Is(err, source.ErrTooFewSources) {
		t.Fatalf("skipped fleet should miss MinSources, got %v", err)
	}
	if rep.Outcomes[0].State != "skipped" || rep.Outcomes[0].Attempts != 0 {
		t.Fatalf("cooldown outcome = %+v", rep.Outcomes[0])
	}
	if f.calls != calls {
		t.Fatalf("skipped source was fetched anyway (%d → %d calls)", calls, f.calls)
	}

	// Third call after the cooldown: half-open probe succeeds (the
	// flake budget is spent), breaker closes, records flow.
	clock = clock.Add(2 * time.Minute)
	d, rep, err := ing.Ingest(context.Background(), []source.Source{f})
	if err != nil {
		t.Fatalf("post-cooldown Ingest: %v", err)
	}
	if rep.Outcomes[0].State != "ok" || d.NumRecords() != 1 {
		t.Fatalf("post-cooldown outcome = %+v", rep.Outcomes[0])
	}
}

// TestIngestZeroAllocPerRecord pins the overhead of ingestion vs
// direct dataset construction: the delta must not scale with records.
func TestIngestZeroAllocPerRecord(t *testing.T) {
	web := testWeb(t)
	srcs := source.FromWeb(web)
	n := web.Dataset.NumRecords()
	if n == 0 {
		t.Fatal("empty web")
	}

	direct := testing.AllocsPerRun(10, func() {
		d := data.NewDataset()
		for _, s := range web.Dataset.Sources() {
			if err := d.AddSource(s); err != nil {
				t.Fatal(err)
			}
			for _, r := range web.Dataset.SourceRecords(s.ID) {
				if err := d.AddRecord(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	ing := source.NewIngestor(fastCfg(1))
	ctx := context.Background()
	ingested := testing.AllocsPerRun(10, func() {
		if _, _, err := ing.Ingest(ctx, srcs); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := (ingested - direct) / float64(n)
	if perRecord > 0.5 {
		t.Fatalf("ingestion overhead = %.2f allocs/record (ingest %.0f, direct %.0f, %d records)",
			perRecord, ingested, direct, n)
	}
}

func BenchmarkIngestNoFaults(b *testing.B) {
	web := testWeb(b)
	srcs := source.FromWeb(web)
	ing := source.NewIngestor(fastCfg(0))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ing.Ingest(ctx, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestTransientFaults(b *testing.B) {
	web := testWeb(b)
	base := source.FromWeb(web)
	cfg := fastCfg(0)
	cfg.Retries = 3
	ing := source.NewIngestor(cfg)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet := faults.WrapAll(base, faults.Config{Seed: 7, TransientRate: 0.3})
		if _, _, err := ing.Ingest(ctx, fleet); err != nil {
			b.Fatal(err)
		}
	}
}
