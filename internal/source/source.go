// Package source models data acquisition as a fleet of independently
// failing web sources — the operational face of the tutorial's Volume
// and Velocity discussion. Upstream of the integration pipeline, real
// source fetches time out, flake, truncate and die; this package wraps
// each source behind a small Fetch interface and provides a resilient
// Ingestor (retry with capped exponential backoff, per-source circuit
// breaking, bounded fan-out, graceful degradation) that assembles
// whatever survives into a data.Dataset plus an exact Report of what
// was dropped or degraded.
//
// Everything is deterministic: sources ingest in sorted-ID order, each
// source's retry schedule depends only on its ID and attempt number,
// and the assembled dataset and Report are byte-identical for any
// worker count.
package source

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/datagen"
)

// Sentinel errors. Fetch implementations and the fault injector wrap
// these so the Ingestor (and callers) can classify failures with
// errors.Is.
var (
	// ErrTransient marks a failure worth retrying (timeouts, flaky
	// reads, rate limits).
	ErrTransient = errors.New("source: transient failure")
	// ErrPermanent marks a failure that retrying cannot fix (dead host,
	// revoked credentials). The Ingestor drops the source immediately.
	ErrPermanent = errors.New("source: permanent failure")
	// ErrBreakerOpen is reported for sources skipped because their
	// circuit breaker was open.
	ErrBreakerOpen = errors.New("source: circuit breaker open")
	// ErrTooFewSources is wrapped by Ingest when fewer sources survived
	// than IngestConfig.MinSources requires.
	ErrTooFewSources = errors.New("source: too few sources survived ingestion")
)

// Source is one fetchable data source. Fetch returns the source's
// records or an error; implementations should honour ctx cancellation
// and may classify failures by wrapping ErrTransient or ErrPermanent
// (unclassified errors are treated as transient).
type Source interface {
	// Meta returns the source's metadata. It must be cheap and
	// side-effect free.
	Meta() *data.Source
	// Fetch returns the source's records. The Ingestor never mutates
	// the returned slice or records, so implementations may return
	// shared backing data.
	Fetch(ctx context.Context) ([]*data.Record, error)
}

// Static is a Source over in-memory records — the adapter for
// generated webs and already-loaded datasets. Fetch never fails.
type Static struct {
	Src  *data.Source
	Recs []*data.Record
}

// Meta implements Source.
func (s *Static) Meta() *data.Source { return s.Src }

// Fetch implements Source. The shared record slice is returned as-is
// (no copy), keeping ingestion allocation-free per record.
func (s *Static) Fetch(ctx context.Context) ([]*data.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Recs, nil
}

// FromDataset adapts every source of a dataset into a Static source,
// sorted by source ID.
func FromDataset(d *data.Dataset) []Source {
	srcs := d.Sources() // already sorted by ID
	out := make([]Source, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, &Static{Src: s, Recs: d.SourceRecords(s.ID)})
	}
	return out
}

// FromWeb adapts a generated source web: one Static source per
// generated source, carrying that source's emitted records.
func FromWeb(w *datagen.Web) []Source {
	return FromDataset(w.Dataset)
}

// sortSources returns the sources in ascending Meta().ID order,
// rejecting duplicate IDs (two sources feeding the same ID would make
// the assembled dataset depend on scheduling). Generic so record and
// delta fleets share it.
func sortSources[S interface{ Meta() *data.Source }](sources []S) ([]S, error) {
	out := append([]S(nil), sources...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Meta().ID < out[j].Meta().ID })
	for i := 1; i < len(out); i++ {
		if out[i].Meta().ID == out[i-1].Meta().ID {
			return nil, fmt.Errorf("source: duplicate source ID %q", out[i].Meta().ID)
		}
	}
	return out, nil
}
