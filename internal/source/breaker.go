package source

import "time"

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed breakerState = iota // normal operation
	breakerOpen                       // rejecting calls until cooldown
	breakerHalfOpen                   // one probe allowed through
)

// breaker trips after a run of consecutive failures and rejects
// further calls until a cooldown elapses, then admits a single probe:
// probe success closes the breaker, probe failure re-opens it for
// another cooldown. It is not concurrency-safe; the Ingestor confines
// each breaker to the one goroutine ingesting its source.
type breaker struct {
	threshold int           // consecutive failures to trip (>=1)
	cooldown  time.Duration // open → half-open delay
	state     breakerState
	fails     int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed now, transitioning
// open → half-open when the cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // closed or half-open (the probe is in flight)
		return true
	}
}

// success records a successful call, closing the breaker.
func (b *breaker) success() {
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed call, tripping the breaker when the
// consecutive-failure threshold is reached (immediately, from
// half-open).
func (b *breaker) failure(now time.Time) {
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
	}
}

// open reports whether the breaker is currently rejecting calls.
func (b *breaker) open(now time.Time) bool { return !b.allowPeek(now) }

// allowPeek is allow without the open → half-open transition.
func (b *breaker) allowPeek(now time.Time) bool {
	if b.state == breakerOpen {
		return now.Sub(b.openedAt) >= b.cooldown
	}
	return true
}
