package faults_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/source"
	"repro/internal/source/faults"
)

// These fuzz targets verify PROPERTIES that must hold across the whole
// (seed, fault-rate) input space, not just the hardcoded values the
// unit tests pin:
//
//   - the same seed always produces the same fault schedule;
//   - a faulted ingest feeding the full pipeline never panics and is
//     deterministic end to end (same seed+rate ⇒ same report shape).
//
// Run with `go test -fuzz FuzzIngestPipeline ./internal/source/faults`
// to explore; the seed corpus below runs on every plain `go test`.

// clampRate folds an arbitrary fuzzed float into a valid probability.
// NaN and infinities map to 0 so the target never rejects an input.
func clampRate(r float64) float64 {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return math.Abs(r) - math.Floor(math.Abs(r))
}

// FuzzScheduleDeterminism: two wraps with the same (seed, rate) produce
// the same per-fetch fault schedule for any seed, not just 42.
func FuzzScheduleDeterminism(f *testing.F) {
	f.Add(int64(0), 0.0)
	f.Add(int64(-1), 1.0)
	f.Add(int64(math.MaxInt64), 0.5)
	f.Add(int64(math.MinInt64), 0.25)
	f.Add(int64(42), 0.5)
	f.Add(int64(7), 0.999)

	f.Fuzz(func(t *testing.T, seed int64, rate float64) {
		rate = clampRate(rate)
		trace := func() []bool {
			fs := faults.Wrap(staticSource("s1", 4), faults.Config{
				Seed: seed, TransientRate: rate, DeadRate: rate / 4,
			})
			out := make([]bool, 0, 32)
			for i := 0; i < 32; i++ {
				_, err := fs.Fetch(context.Background())
				out = append(out, err == nil)
			}
			return out
		}
		a, b := trace(), trace()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d rate %f: schedule diverged at fetch %d", seed, rate, i)
			}
		}
	})
}

// FuzzIngestPipeline drives the full ingest→pipeline path under an
// arbitrary fault mix. Whatever the (seed, rate), the run must not
// panic, must fail only with the documented ingest error, and must be
// byte-for-byte repeatable: a second identical run yields the same
// surviving sources, candidates, matches and clusters.
func FuzzIngestPipeline(f *testing.F) {
	f.Add(int64(0), 0.0)
	f.Add(int64(1), 0.3)
	f.Add(int64(-1), 0.9)
	f.Add(int64(math.MaxInt64), 0.5)
	f.Add(int64(42), 1.0)

	// One fixed corpus for every fuzz input; the faults are what vary.
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 71, NumEntities: 12})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 72, NumSources: 5, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.4,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})

	f.Fuzz(func(t *testing.T, seed int64, rate float64) {
		rate = clampRate(rate)
		run := func() (string, error) {
			fleet := faults.WrapAll(source.FromDataset(web.Dataset), faults.Config{
				Seed:          seed,
				TransientRate: rate,
				DeadRate:      rate / 4,
				CorruptRate:   rate / 4,
				TruncateRate:  rate / 4,
			})
			ing := source.NewIngestor(source.IngestConfig{Workers: 2})
			d, irep, err := ing.Ingest(context.Background(), fleet)
			if err != nil {
				return "", err
			}
			rep, err := core.New(core.Config{Workers: 2}).Run(d)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("ok=%d drop=%v recs=%d cand=%d match=%d clus=%d",
				irep.Succeeded, irep.Dropped, d.NumRecords(),
				rep.Candidates, len(rep.Matched), len(rep.Clusters)), nil
		}
		sum1, err1 := run()
		if err1 != nil && !errors.Is(err1, source.ErrTooFewSources) {
			t.Fatalf("seed %d rate %f: unexpected ingest error: %v", seed, rate, err1)
		}
		sum2, err2 := run()
		if (err1 == nil) != (err2 == nil) || sum1 != sum2 {
			t.Fatalf("seed %d rate %f: nondeterministic run:\n  %q (%v)\n  %q (%v)",
				seed, rate, sum1, err1, sum2, err2)
		}
	})
}
