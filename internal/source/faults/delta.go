package faults

import (
	"context"
	"math/rand"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/source"
)

// DeltaConfig tunes the delta-log mangler: adversarial but
// semantics-preserving rewrites of a change log that a correct
// mutable-stream consumer must shrug off. All rates are probabilities
// in [0,1]; the zero value mangles nothing.
type DeltaConfig struct {
	// Seed drives every mangle decision. Each source derives its RNG
	// from Seed and its ID, and the transform is re-derived from
	// scratch on every fetch — so a source's mangled log is canonical:
	// the same bytes on every refetch, with truncated inner fetches
	// mangling to an exact prefix of the full mangled log
	// (refetch-until-covered stays sound).
	Seed int64
	// DupDeleteRate is the per-delete probability the delete is
	// delivered twice in a row (the second must be a no-op).
	DupDeleteRate float64
	// EarlyDeleteRate is the per-upsert probability a delete of the
	// same ID is injected immediately before it (delete-before-insert
	// must be a no-op).
	EarlyDeleteRate float64
	// UpdateStormRate is the per-upsert probability the upsert is
	// delivered StormSize times in a row (replays must be idempotent).
	UpdateStormRate float64
	// StormSize is the total copies an update storm delivers
	// (default 3).
	StormSize int
	// Obs counts injected mangles under "faults." when set.
	Obs *obs.Registry
}

// MangleLog applies cfg's mangles to a change log, deterministically
// per (cfg.Seed, id). It is a pure transform with a fixed RNG budget —
// exactly three draws per input delta, whichever branches fire — so
// the mangled form of any input prefix is an exact prefix of the
// mangled full log.
func MangleLog(id string, log []source.Delta, cfg DeltaConfig) []source.Delta {
	if cfg.DupDeleteRate <= 0 && cfg.EarlyDeleteRate <= 0 && cfg.UpdateStormRate <= 0 {
		return log
	}
	storm := cfg.StormSize
	if storm < 2 {
		storm = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(fnv64(id))))
	reg := obs.OrDefault(cfg.Obs)
	out := make([]source.Delta, 0, len(log)+len(log)/4)
	for _, d := range log {
		// Fixed draw order and count per input delta.
		dup := rng.Float64() < cfg.DupDeleteRate
		early := rng.Float64() < cfg.EarlyDeleteRate
		stormy := rng.Float64() < cfg.UpdateStormRate
		switch d.Op {
		case source.OpDelete:
			out = append(out, d)
			if dup {
				reg.Counter("faults.delta_dup_deletes").Inc()
				out = append(out, d)
			}
		case source.OpUpsert:
			if early {
				reg.Counter("faults.delta_early_deletes").Inc()
				out = append(out, source.Deletion(d.ID))
			}
			out = append(out, d)
			if stormy {
				reg.Counter("faults.delta_update_storms").Inc()
				for i := 1; i < storm; i++ {
					out = append(out, d)
				}
			}
		default:
			out = append(out, d)
		}
	}
	return out
}

// mangledDeltas decorates a DeltaSource with MangleLog.
type mangledDeltas struct {
	inner source.DeltaSource
	cfg   DeltaConfig
}

// WrapDeltas returns s with cfg's mangles applied to every fetch.
// Because the transform is pure, the wrapped source's canonical log is
// simply MangleLog of the inner canonical log; use MangledTotal (or
// MangleLog on the full inner log) for StreamConfig.Totals.
func WrapDeltas(s source.DeltaSource, cfg DeltaConfig) source.DeltaSource {
	return &mangledDeltas{inner: s, cfg: cfg}
}

// WrapDeltasAll wraps every source in the fleet with the same config.
func WrapDeltasAll(ss []source.DeltaSource, cfg DeltaConfig) []source.DeltaSource {
	out := make([]source.DeltaSource, len(ss))
	for i, s := range ss {
		out[i] = WrapDeltas(s, cfg)
	}
	return out
}

// Meta implements source.DeltaSource.
func (m *mangledDeltas) Meta() *data.Source { return m.inner.Meta() }

// FetchDeltas implements source.DeltaSource.
func (m *mangledDeltas) FetchDeltas(ctx context.Context) ([]source.Delta, error) {
	log, err := m.inner.FetchDeltas(ctx)
	if err != nil {
		return nil, err
	}
	return MangleLog(m.inner.Meta().ID, log, m.cfg), nil
}

// MangledTotal computes the canonical mangled-log length for a source
// whose clean log is known — what StreamConfig.Totals must declare for
// a wrapped source.
func MangledTotal(id string, log []source.Delta, cfg DeltaConfig) int {
	return len(MangleLog(id, log, cfg))
}
