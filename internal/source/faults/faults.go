// Package faults injects deterministic failures into sources — the
// chaos half of the ingestion robustness story. Every fault decision
// is drawn from a per-source RNG seeded from (Config.Seed, source ID),
// so a given seed reproduces the exact same fault schedule regardless
// of worker count or wall-clock timing: transient errors on the same
// attempts, the same sources dead, the same records truncated or
// corrupted.
//
// The injector's RNG state advances with each Fetch, so reproducing a
// run means re-wrapping the sources (Wrap/WrapAll) with the same
// Config, not reusing wrapped sources across runs.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/source"
)

// Config tunes the injected fault mix. All rates are probabilities in
// [0,1]; the zero value injects nothing.
type Config struct {
	// Seed drives every fault decision. Each source derives its own
	// RNG from Seed and its ID, so schedules are per-source
	// deterministic.
	Seed int64
	// TransientRate is the per-fetch probability of a retryable error
	// (wrapping source.ErrTransient).
	TransientRate float64
	// DeadRate is the per-source probability, decided once at Wrap
	// time, that the source is permanently dead (every Fetch wraps
	// source.ErrPermanent).
	DeadRate float64
	// TruncateRate is the per-fetch probability that a successful
	// payload is cut to TruncateFraction of its records (default 0.5).
	TruncateRate     float64
	TruncateFraction float64
	// CorruptRate is the per-record probability that a delivered
	// record has one field value mangled. Corruption clones the
	// record first — the wrapped source's data is never mutated.
	CorruptRate float64
	// LatencyRate is the per-fetch probability of sleeping Latency
	// (default 50ms) before proceeding; the sleep respects ctx, so
	// per-attempt deadlines convert spikes into timeouts.
	LatencyRate float64
	Latency     time.Duration
	// Obs counts injected faults under "faults." when set.
	Obs *obs.Registry
}

// Wrap returns s with cfg's fault mix injected. Whether the source is
// permanently dead is decided here, so a wrapped fleet has a fixed
// dead set for the whole run.
func Wrap(s source.Source, cfg Config) source.Source {
	if cfg.TruncateFraction <= 0 || cfg.TruncateFraction > 1 {
		cfg.TruncateFraction = 0.5
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	f := &faulty{
		inner: s,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(fnv64(s.Meta().ID)))),
	}
	f.dead = f.rng.Float64() < cfg.DeadRate
	if f.dead {
		obs.OrDefault(cfg.Obs).Counter("faults.dead_sources").Inc()
	}
	return f
}

// WrapAll wraps every source in the fleet with the same config.
func WrapAll(ss []source.Source, cfg Config) []source.Source {
	out := make([]source.Source, len(ss))
	for i, s := range ss {
		out[i] = Wrap(s, cfg)
	}
	return out
}

// faulty decorates a source with the fault mix. The mutex serialises
// RNG access; fetches of one source are sequential inside the
// Ingestor's retry loop anyway, so contention is nil.
type faulty struct {
	inner source.Source
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	dead  bool
	fetch int // fetch counter, for error messages
}

// Meta implements source.Source.
func (f *faulty) Meta() *data.Source { return f.inner.Meta() }

// Fetch implements source.Source. Fault rolls happen in a fixed order
// (latency, transient, fetch, truncate, per-record corruption), so the
// RNG stream — and therefore the schedule — depends only on the seed
// and the number of prior fetches.
func (f *faulty) Fetch(ctx context.Context) ([]*data.Record, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetch++
	reg := obs.OrDefault(f.cfg.Obs)
	id := f.inner.Meta().ID
	if f.dead {
		return nil, fmt.Errorf("faults: %s is dead: %w", id, source.ErrPermanent)
	}
	if f.cfg.LatencyRate > 0 && f.rng.Float64() < f.cfg.LatencyRate {
		reg.Counter("faults.latency_spikes").Inc()
		if err := sleepCtx(ctx, f.cfg.Latency); err != nil {
			return nil, fmt.Errorf("faults: %s latency spike: %w", id, err)
		}
	}
	if f.cfg.TransientRate > 0 && f.rng.Float64() < f.cfg.TransientRate {
		reg.Counter("faults.transient").Inc()
		return nil, fmt.Errorf("faults: %s fetch %d flaked: %w", id, f.fetch, source.ErrTransient)
	}
	recs, err := f.inner.Fetch(ctx)
	if err != nil {
		return nil, err
	}
	if f.cfg.TruncateRate > 0 && f.rng.Float64() < f.cfg.TruncateRate {
		reg.Counter("faults.truncated").Inc()
		keep := int(float64(len(recs)) * f.cfg.TruncateFraction)
		recs = recs[:keep]
	}
	if f.cfg.CorruptRate > 0 {
		out := recs
		copied := false
		for i, r := range recs {
			if f.rng.Float64() >= f.cfg.CorruptRate {
				continue
			}
			if !copied {
				out = append([]*data.Record(nil), recs...)
				copied = true
			}
			out[i] = corrupt(r, f.rng)
			reg.Counter("faults.corrupted_records").Inc()
		}
		recs = out
	}
	return recs, nil
}

// corrupt clones r and mangles one field value (chosen from the
// record's sorted attribute order, so the choice is deterministic).
func corrupt(r *data.Record, rng *rand.Rand) *data.Record {
	attrs := r.Attrs()
	c := r.Clone()
	if len(attrs) == 0 {
		return c
	}
	a := attrs[rng.Intn(len(attrs))]
	c.Set(a, data.String("‽"+reverse(r.Get(a).String())))
	return c
}

func reverse(s string) string {
	b := []rune(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// fnv64 is the FNV-1a hash of s (mirrors the ingestor's jitter hash).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
