package faults

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/source"
)

func deltaWeb(seed int64) *data.Dataset {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 30})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 4, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
	})
	return web.Dataset
}

func mangleFingerprint(log []source.Delta) string {
	s := ""
	for _, d := range log {
		s += d.Op.String() + ":" + d.ID + ";"
	}
	return s
}

// replay folds a delta log into its final live set.
func replay(log []source.Delta) map[string]*data.Record {
	live := map[string]*data.Record{}
	for _, d := range log {
		switch d.Op {
		case source.OpUpsert:
			live[d.ID] = d.Record
		case source.OpDelete:
			delete(live, d.ID)
		}
	}
	return live
}

func TestMangleLogDeterministicAndSemanticsPreserving(t *testing.T) {
	d := deltaWeb(20)
	srcs := d.Sources()
	clean, _ := source.Churn(d.SourceRecords(srcs[0].ID),
		source.ChurnConfig{Seed: 5, UpdateRate: 0.3, DeleteRate: 0.2})
	cfg := DeltaConfig{Seed: 77, DupDeleteRate: 0.5, EarlyDeleteRate: 0.3, UpdateStormRate: 0.3}

	a := MangleLog(srcs[0].ID, clean, cfg)
	b := MangleLog(srcs[0].ID, clean, cfg)
	if mangleFingerprint(a) != mangleFingerprint(b) {
		t.Fatal("mangle not deterministic")
	}
	if len(a) <= len(clean) {
		t.Fatalf("mangle injected nothing: %d ≤ %d", len(a), len(clean))
	}

	// The mangles are adversarial noise, not data changes: replaying
	// the mangled log must end at exactly the clean log's live set.
	want, got := replay(clean), replay(a)
	if len(want) != len(got) {
		t.Fatalf("live sets differ: %d vs %d", len(want), len(got))
	}
	for id, r := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("record %s lost by mangling", id)
		}
		if g.Get("title").Str != r.Get("title").Str {
			t.Fatalf("record %s ends at wrong version", id)
		}
	}
}

// TestMangleLogPrefixProperty pins the guarantee refetch-until-covered
// depends on: mangling a truncated inner log yields an exact prefix of
// the full mangled log, so a short payload can never deliver content
// that diverges from the canonical sequence.
func TestMangleLogPrefixProperty(t *testing.T) {
	d := deltaWeb(21)
	srcs := d.Sources()
	clean, _ := source.Churn(d.SourceRecords(srcs[0].ID),
		source.ChurnConfig{Seed: 6, UpdateRate: 0.4, DeleteRate: 0.3})
	cfg := DeltaConfig{Seed: 99, DupDeleteRate: 0.4, EarlyDeleteRate: 0.4, UpdateStormRate: 0.4, StormSize: 4}

	full := MangleLog(srcs[0].ID, clean, cfg)
	for k := 0; k <= len(clean); k++ {
		part := MangleLog(srcs[0].ID, clean[:k], cfg)
		if len(part) > len(full) {
			t.Fatalf("prefix %d mangles longer than full log", k)
		}
		if mangleFingerprint(part) != mangleFingerprint(full[:len(part)]) {
			t.Fatalf("mangle of prefix %d is not a prefix of the full mangled log", k)
		}
	}
}

// TestWrappedDeltaFleetStreamsDeterministically drives a mangled,
// record-fault-wrapped fleet through DeltaStreamer twice and demands
// identical epochs — the end-to-end determinism contract.
func TestWrappedDeltaFleetStreamsDeterministically(t *testing.T) {
	d := deltaWeb(22)
	cleanFleet, _, _ := source.ChurnSources(d, source.ChurnConfig{Seed: 8, UpdateRate: 0.2, DeleteRate: 0.15})
	cfg := DeltaConfig{Seed: 123, DupDeleteRate: 0.3, EarlyDeleteRate: 0.2, UpdateStormRate: 0.2}

	totals := map[string]int{}
	for _, s := range cleanFleet {
		st := s.(*source.DeltaStatic)
		totals[st.Src.ID] = MangledTotal(st.Src.ID, st.Log, cfg)
	}

	drain := func() []source.DeltaEpoch {
		str, err := source.NewDeltaStreamer(context.Background(),
			WrapDeltasAll(cleanFleet, cfg),
			source.StreamConfig{EpochSize: 7, Totals: totals})
		if err != nil {
			t.Fatal(err)
		}
		defer str.Close()
		var eps []source.DeltaEpoch
		for ep := range str.C {
			eps = append(eps, ep)
		}
		if err := str.Err(); err != nil {
			t.Fatal(err)
		}
		return eps
	}
	a, b := drain(), drain()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("epoch counts %d vs %d", len(a), len(b))
	}
	injected := 0
	for i := range a {
		if mangleFingerprint(a[i].Deltas) != mangleFingerprint(b[i].Deltas) {
			t.Fatalf("epoch %d differs across runs", i)
		}
		injected += len(a[i].Deltas)
	}
	cleanLen := 0
	for _, s := range cleanFleet {
		cleanLen += len(s.(*source.DeltaStatic).Log)
	}
	if injected <= cleanLen {
		t.Fatalf("streamed %d deltas, want > clean %d (mangles must appear)", injected, cleanLen)
	}
}
