package faults_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/source"
	"repro/internal/source/faults"
)

func staticSource(id string, n int) source.Source {
	s := &data.Source{ID: id}
	recs := make([]*data.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, data.NewRecord(
			id+"-r"+string(rune('a'+i)), id).Set("title", data.String("value")))
	}
	return &source.Static{Src: s, Recs: recs}
}

func TestDeadSourceIsPermanent(t *testing.T) {
	// DeadRate 1 kills every source regardless of seed.
	f := faults.Wrap(staticSource("s1", 3), faults.Config{Seed: 1, DeadRate: 1})
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(context.Background()); !errors.Is(err, source.ErrPermanent) {
			t.Fatalf("fetch %d: want ErrPermanent, got %v", i, err)
		}
	}
}

func TestTransientWrapsSentinel(t *testing.T) {
	f := faults.Wrap(staticSource("s1", 3), faults.Config{Seed: 1, TransientRate: 1})
	if _, err := f.Fetch(context.Background()); !errors.Is(err, source.ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
}

func TestCorruptionClonesRecords(t *testing.T) {
	inner := staticSource("s1", 4)
	orig, _ := inner.Fetch(context.Background())
	snapshot := make([]string, len(orig))
	for i, r := range orig {
		snapshot[i] = r.String()
	}
	f := faults.Wrap(inner, faults.Config{Seed: 1, CorruptRate: 1})
	recs, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	for i, r := range recs {
		if r.String() != snapshot[i] {
			mangled++
		}
	}
	if mangled != len(recs) {
		t.Fatalf("CorruptRate 1 mangled %d/%d records", mangled, len(recs))
	}
	// The wrapped source's own records are untouched.
	for i, r := range orig {
		if r.String() != snapshot[i] {
			t.Fatalf("corruption mutated the original record %d: %s", i, r)
		}
	}
}

func TestTruncationKeepsPrefix(t *testing.T) {
	f := faults.Wrap(staticSource("s1", 4), faults.Config{
		Seed: 1, TruncateRate: 1, TruncateFraction: 0.5,
	})
	recs, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("truncated to %d records, want 2", len(recs))
	}
}

func TestLatencySpikeHonoursContext(t *testing.T) {
	f := faults.Wrap(staticSource("s1", 1), faults.Config{
		Seed: 1, LatencyRate: 1, Latency: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Fetch(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("latency spike ignored the context deadline")
	}
}

// TestScheduleDeterminism: two wraps with the same seed produce the
// same fault schedule; a different seed produces a different one.
func TestScheduleDeterminism(t *testing.T) {
	trace := func(seed int64) []bool {
		f := faults.Wrap(staticSource("s1", 4), faults.Config{Seed: seed, TransientRate: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := f.Fetch(context.Background())
			out = append(out, err == nil)
		}
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fetch %d", i)
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-fetch schedules")
	}
}
