package source

import (
	"context"
	"time"
)

// SetClock replaces the ingestor's clock — the circuit-breaker tests
// drive cooldowns with a fake time source.
func (ing *Ingestor) SetClock(now func() time.Time) { ing.now = now }

// SetSleep replaces the backoff sleeper.
func (ing *Ingestor) SetSleep(f func(ctx context.Context, d time.Duration) error) { ing.sleep = f }

// BackoffDelay exposes the retry schedule for determinism tests.
func BackoffDelay(id string, attempt int, base, max time.Duration) time.Duration {
	return backoffDelay(id, attempt, base, max)
}
