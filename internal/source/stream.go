package source

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/data"
)

// ErrShortSource reports a Watch poll that exhausted its refetch budget
// without ever seeing a payload covering the target cursor range —
// either the source keeps truncating or it genuinely holds fewer
// records than the declared total.
var ErrShortSource = errors.New("source: fetches never covered the watch cursor range")

// Epoch is one batch of newly arrived records across the watched fleet
// — the unit of work a stream processor applies atomically.
type Epoch struct {
	// Seq numbers epochs from StreamConfig.StartSeq upward.
	Seq int
	// Records holds this epoch's arrivals in delivery order: sources in
	// ascending ID order, each source's records in its canonical
	// sequence order.
	Records []*data.Record
	// Cursors snapshots, per source ID, how many of that source's
	// records have been delivered once this epoch is applied — the
	// resume point a stream processor persists alongside its state.
	Cursors map[string]int
}

// Watch turns a Source into a deterministic stream cursor: each Poll
// delivers the next (at most) epochSize records of the source's
// canonical record sequence. Delivery is schedule-independent even
// under fault injection — a poll refetches (up to retries times) until
// the payload covers the target window, so transient errors and
// truncated fetches delay records but never change their content or
// order. That property is what makes crash/resume replay byte-identical.
//
// total declares the length of the canonical sequence. It must come
// from the caller (for a fault-wrapped source a truncated fetch is
// indistinguishable from a genuinely short one); Totals derives it
// from the backing dataset.
type Watch struct {
	src     Source
	total   int
	epoch   int
	retries int
	cursor  int
}

// NewWatch builds a watch over src delivering epochSize records per
// poll (default 100) with the given refetch budget per poll (default 8
// retries after the first attempt; negative means none).
func NewWatch(src Source, total, epochSize, retries int) *Watch {
	if epochSize <= 0 {
		epochSize = 100
	}
	if retries == 0 {
		retries = 8
	}
	if retries < 0 {
		retries = 0
	}
	if total < 0 {
		total = 0
	}
	return &Watch{src: src, total: total, epoch: epochSize, retries: retries}
}

// Meta returns the watched source's metadata.
func (w *Watch) Meta() *data.Source { return w.src.Meta() }

// Cursor reports how many records have been delivered so far.
func (w *Watch) Cursor() int { return w.cursor }

// Seek positions the cursor (clamped to [0, total]) — the restore half
// of snapshot/resume: a restored stream seeks each watch to its
// persisted cursor and replay continues from there.
func (w *Watch) Seek(cursor int) {
	if cursor < 0 {
		cursor = 0
	}
	if cursor > w.total {
		cursor = w.total
	}
	w.cursor = cursor
}

// Done reports whether the whole canonical sequence has been delivered.
func (w *Watch) Done() bool { return w.cursor >= w.total }

// Poll delivers the next batch: records [cursor, min(cursor+epoch,
// total)) of the canonical sequence. A drained watch returns (nil,
// nil). Permanent failures and context cancellation abort immediately;
// transient failures and short (truncated) payloads are refetched up
// to the retry budget, then reported wrapping both the last error and
// ErrShortSource/ErrTransient so callers can classify.
func (w *Watch) Poll(ctx context.Context) ([]*data.Record, error) {
	if w.Done() {
		return nil, nil
	}
	target := w.cursor + w.epoch
	if target > w.total {
		target = w.total
	}
	batch, err := pollWindow(ctx, w.Meta().ID, w.src.Fetch, w.cursor, target, w.retries)
	if err != nil {
		return nil, err
	}
	w.cursor = target
	return batch, nil
}

// StreamConfig tunes a Streamer. The zero value is usable.
type StreamConfig struct {
	// EpochSize is the records delivered per source per epoch.
	// Default 100.
	EpochSize int
	// Buffer bounds the epoch channel between the producer and the
	// consumer — backpressure, not unbounded queueing. Default 4.
	Buffer int
	// Retries is the refetch budget per poll (on top of the first
	// attempt); transient faults and truncations consume it. Default 8;
	// negative means none.
	Retries int
	// Totals declares each source's canonical record count by ID.
	// Sources without an entry fall back to the length of their static
	// record slice when the source is a *Static; otherwise the streamer
	// refuses to watch them.
	Totals map[string]int
	// Cursors positions each watch at construction (resume points from
	// a persisted stream state). Absent IDs start at 0.
	Cursors map[string]int
	// StartSeq numbers the first emitted epoch (a resumed stream
	// continues its epoch numbering). Default 0.
	StartSeq int
}

// Streamer drives a fleet of watches concurrently with the consumer:
// one producer goroutine polls every live watch once per epoch, bundles
// the arrivals into an Epoch and sends it on the bounded channel C.
// The channel closes when every source is drained or on the first
// error (see Err).
type Streamer struct {
	// C delivers epochs in sequence order.
	C <-chan Epoch

	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	err error
}

// Totals maps each source of a dataset to its record count — the
// canonical-sequence lengths a Streamer needs when the fleet is
// wrapped (fault injection) and payload lengths can't be trusted.
func Totals(d *data.Dataset) map[string]int {
	out := make(map[string]int, d.NumSources())
	for _, s := range d.Sources() {
		out[s.ID] = len(d.SourceRecords(s.ID))
	}
	return out
}

// NewStreamer starts streaming the fleet. Sources are watched in
// ascending ID order (duplicate IDs are rejected); the producer stops
// on context cancellation, on the first poll error, or when every
// source is drained.
func NewStreamer(ctx context.Context, sources []Source, cfg StreamConfig) (*Streamer, error) {
	sorted, err := sortSources(sources)
	if err != nil {
		return nil, err
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4
	}
	watches := make([]*Watch, 0, len(sorted))
	for _, s := range sorted {
		id := s.Meta().ID
		total, ok := cfg.Totals[id]
		if !ok {
			st, isStatic := s.(*Static)
			if !isStatic {
				return nil, fmt.Errorf("source: no declared total for watched source %q", id)
			}
			total = len(st.Recs)
		}
		w := NewWatch(s, total, cfg.EpochSize, cfg.Retries)
		if c, ok := cfg.Cursors[id]; ok {
			w.Seek(c)
		}
		watches = append(watches, w)
	}

	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan Epoch, cfg.Buffer)
	str := &Streamer{C: ch, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(str.done)
		defer close(ch)
		for seq := cfg.StartSeq; ; seq++ {
			ep := Epoch{Seq: seq, Cursors: make(map[string]int, len(watches))}
			for _, w := range watches {
				recs, err := w.Poll(ctx)
				if err != nil {
					str.setErr(err)
					return
				}
				ep.Records = append(ep.Records, recs...)
				ep.Cursors[w.Meta().ID] = w.Cursor()
			}
			if len(ep.Records) == 0 {
				return // every source drained
			}
			select {
			case ch <- ep:
			case <-ctx.Done():
				str.setErr(ctx.Err())
				return
			}
		}
	}()
	return str, nil
}

func (s *Streamer) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Err reports why the stream stopped: nil after a clean drain. Valid
// once C is closed.
func (s *Streamer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the producer and waits for it to exit. The channel is
// closed; a consumer ranging over C terminates.
func (s *Streamer) Close() {
	s.cancel()
	<-s.done
}
