package source

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
)

// deltaFingerprint renders a delta log compactly for equality checks.
func deltaFingerprint(log []Delta) string {
	s := ""
	for _, d := range log {
		s += d.Op.String() + ":" + d.ID
		if d.Record != nil {
			s += "=" + d.Record.Get("title").Str
		}
		s += ";"
	}
	return s
}

func TestAsDeltaSourceLiftsRecords(t *testing.T) {
	d := streamWeb(10)
	src := FromDataset(d)[0]
	want := d.SourceRecords(src.Meta().ID)

	ds := AsDeltaSource(src)
	log, err := ds.FetchDeltas(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(want) {
		t.Fatalf("log length %d, want %d", len(log), len(want))
	}
	for i, dl := range log {
		if dl.Op != OpUpsert || dl.ID != want[i].ID || dl.Record != want[i] {
			t.Fatalf("delta %d = %v, want upsert of %s", i, dl, want[i].ID)
		}
	}
}

func TestDeltaWatchDeliversCanonicalLog(t *testing.T) {
	d := streamWeb(11)
	srcs := d.Sources()
	log, _ := Churn(d.SourceRecords(srcs[0].ID), ChurnConfig{Seed: 7, UpdateRate: 0.2, DeleteRate: 0.1})
	ds := &DeltaStatic{Src: srcs[0], Log: log}

	w := NewDeltaWatch(ds, len(log), 6, 0)
	var got []Delta
	for !w.Done() {
		batch, err := w.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 || len(batch) > 6 {
			t.Fatalf("batch size %d", len(batch))
		}
		got = append(got, batch...)
	}
	if deltaFingerprint(got) != deltaFingerprint(log) {
		t.Fatal("delivered log differs from canonical log")
	}
	if batch, err := w.Poll(context.Background()); batch != nil || err != nil {
		t.Fatalf("drained watch: %v %v", batch, err)
	}
}

// flakyDeltaSource fails its first n fetches transiently and truncates
// the next m to a prefix, then behaves — the delta analogue of
// flakySource.
type flakyDeltaSource struct {
	inner     *DeltaStatic
	transient int
	truncated int
}

func (f *flakyDeltaSource) Meta() *data.Source { return f.inner.Src }

func (f *flakyDeltaSource) FetchDeltas(ctx context.Context) ([]Delta, error) {
	if f.transient > 0 {
		f.transient--
		return nil, ErrTransient
	}
	if f.truncated > 0 {
		f.truncated--
		return f.inner.Log[:len(f.inner.Log)/2], nil
	}
	return f.inner.FetchDeltas(ctx)
}

func TestDeltaWatchRefetchesThroughFaults(t *testing.T) {
	d := streamWeb(12)
	srcs := d.Sources()
	log, _ := Churn(d.SourceRecords(srcs[0].ID), ChurnConfig{Seed: 3, UpdateRate: 0.3, DeleteRate: 0.2})
	static := &DeltaStatic{Src: srcs[0], Log: log}
	total := len(log)

	flaky := &flakyDeltaSource{inner: static, transient: 2, truncated: 2}
	w := NewDeltaWatch(flaky, total, total, 8)
	batch, err := w.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if deltaFingerprint(batch) != deltaFingerprint(log) {
		t.Fatal("faulted delivery diverged from canonical log")
	}

	flaky = &flakyDeltaSource{inner: static, transient: 5}
	w = NewDeltaWatch(flaky, total, total, 3)
	if _, err := w.Poll(context.Background()); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	flaky = &flakyDeltaSource{inner: static, truncated: 50}
	w = NewDeltaWatch(flaky, total, total, 3)
	if _, err := w.Poll(context.Background()); !errors.Is(err, ErrShortSource) {
		t.Fatalf("err = %v, want ErrShortSource", err)
	}
}

func TestDeltaStreamerDeterministicAndResumable(t *testing.T) {
	d := streamWeb(13)
	fleet, totals, _ := ChurnSources(d, ChurnConfig{Seed: 9, UpdateRate: 0.15, DeleteRate: 0.1})

	drain := func(cursors map[string]int, startSeq int) []DeltaEpoch {
		str, err := NewDeltaStreamer(context.Background(), fleet, StreamConfig{
			EpochSize: 8, Totals: totals, Cursors: cursors, StartSeq: startSeq,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer str.Close()
		var eps []DeltaEpoch
		for ep := range str.C {
			eps = append(eps, ep)
		}
		if err := str.Err(); err != nil {
			t.Fatal(err)
		}
		return eps
	}

	a, b := drain(nil, 0), drain(nil, 0)
	if len(a) < 3 || len(a) != len(b) {
		t.Fatalf("epoch counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != i {
			t.Errorf("epoch %d has seq %d", i, a[i].Seq)
		}
		if deltaFingerprint(a[i].Deltas) != deltaFingerprint(b[i].Deltas) {
			t.Fatalf("epoch %d differs across runs", i)
		}
	}

	// Resume from epoch k-1's cursors: the tail must match exactly.
	k := len(a) / 2
	resumed := drain(a[k-1].Cursors, k)
	if len(resumed) != len(a)-k {
		t.Fatalf("resumed %d epochs, want %d", len(resumed), len(a)-k)
	}
	for i, ep := range resumed {
		if ep.Seq != a[k+i].Seq || deltaFingerprint(ep.Deltas) != deltaFingerprint(a[k+i].Deltas) {
			t.Fatalf("resumed epoch %d differs from uninterrupted run", i)
		}
	}
}

func TestChurnLogShape(t *testing.T) {
	d := streamWeb(14)
	srcs := d.Sources()
	recs := d.SourceRecords(srcs[0].ID)
	cfg := ChurnConfig{Seed: 42, UpdateRate: 0.5, DeleteRate: 0.3}
	log, deleted := Churn(recs, cfg)
	log2, deleted2 := Churn(recs, cfg)
	if deltaFingerprint(log) != deltaFingerprint(log2) || len(deleted) != len(deleted2) {
		t.Fatal("churn log not deterministic")
	}

	// Replay the log into a map: the live set must be recs minus the
	// deleted set, every survivor at its true version.
	live := map[string]*data.Record{}
	seen := map[string]bool{}
	for _, dl := range log {
		switch dl.Op {
		case OpUpsert:
			live[dl.ID] = dl.Record
			seen[dl.ID] = true
		case OpDelete:
			if !seen[dl.ID] {
				t.Fatalf("delete of %s before any upsert", dl.ID)
			}
			delete(live, dl.ID)
		}
	}
	wantLive := 0
	for _, r := range recs {
		if deleted[r.ID] {
			if _, ok := live[r.ID]; ok {
				t.Fatalf("deleted record %s still live at end of log", r.ID)
			}
			continue
		}
		wantLive++
		got, ok := live[r.ID]
		if !ok {
			t.Fatalf("record %s missing from replayed live set", r.ID)
		}
		if got.Get("title").Str != r.Get("title").Str {
			t.Fatalf("record %s ends at corrupted title %q, want %q",
				r.ID, got.Get("title").Str, r.Get("title").Str)
		}
	}
	if len(live) != wantLive {
		t.Fatalf("live set %d, want %d", len(live), wantLive)
	}
	if len(deleted) == 0 {
		t.Fatal("delete rate 0.3 produced no deletions")
	}
	// Update victims must actually arrive corrupted first.
	corrupted := 0
	firstTitle := map[string]string{}
	for _, dl := range log {
		if dl.Op == OpUpsert {
			if _, ok := firstTitle[dl.ID]; !ok {
				firstTitle[dl.ID] = dl.Record.Get("title").Str
			}
		}
	}
	for _, r := range recs {
		if ft := firstTitle[r.ID]; ft != r.Get("title").Str {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("update rate 0.5 corrupted no first deliveries")
	}
}
