package source

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/data"
)

// DeltaOp is the kind of mutation a Delta carries.
type DeltaOp uint8

const (
	// OpUpsert inserts a record or replaces the live version with the
	// same ID.
	OpUpsert DeltaOp = iota
	// OpDelete retracts the record with Delta.ID. Deleting an ID that
	// was never inserted (or is already dead) is a no-op downstream.
	OpDelete
)

// String renders the op for logs and fingerprints.
func (op DeltaOp) String() string {
	switch op {
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Delta is one mutation in a source's canonical change log: either a
// record upsert or a deletion by ID. Record is nil for OpDelete.
type Delta struct {
	Op     DeltaOp
	ID     string
	Record *data.Record
}

// Upsert builds an upsert delta for r.
func Upsert(r *data.Record) Delta { return Delta{Op: OpUpsert, ID: r.ID, Record: r} }

// Deletion builds a delete delta for id.
func Deletion(id string) Delta { return Delta{Op: OpDelete, ID: id} }

// DeltaSource is a source whose canonical sequence is a change log
// rather than a record list. FetchDeltas returns (a possibly truncated
// prefix of) the log; like Source.Fetch, callers never mutate the
// returned slice.
type DeltaSource interface {
	// Meta returns the source's metadata. Cheap and side-effect free.
	Meta() *data.Source
	// FetchDeltas returns the source's change log.
	FetchDeltas(ctx context.Context) ([]Delta, error)
}

// DeltaStatic is a DeltaSource over an in-memory log — the adapter for
// churn workloads and tests. FetchDeltas never fails.
type DeltaStatic struct {
	Src *data.Source
	Log []Delta
}

// Meta implements DeltaSource.
func (s *DeltaStatic) Meta() *data.Source { return s.Src }

// FetchDeltas implements DeltaSource, returning the shared log as-is.
func (s *DeltaStatic) FetchDeltas(ctx context.Context) ([]Delta, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Log, nil
}

// UpsertLog lifts a record list into an all-upsert change log.
func UpsertLog(recs []*data.Record) []Delta {
	out := make([]Delta, len(recs))
	for i, r := range recs {
		out[i] = Upsert(r)
	}
	return out
}

// AsDeltaSource adapts a record Source into a DeltaSource whose log is
// one upsert per record. Because the mapping is positional, a
// truncated or faulty record fetch becomes an equally truncated delta
// log — fault wrappers (faults.Wrap) compose transparently underneath.
func AsDeltaSource(src Source) DeltaSource { return recordDeltas{src} }

type recordDeltas struct{ src Source }

func (a recordDeltas) Meta() *data.Source { return a.src.Meta() }

func (a recordDeltas) FetchDeltas(ctx context.Context) ([]Delta, error) {
	recs, err := a.src.Fetch(ctx)
	if err != nil {
		return nil, err
	}
	return UpsertLog(recs), nil
}

// AsDeltaSources adapts a whole record fleet.
func AsDeltaSources(srcs []Source) []DeltaSource {
	out := make([]DeltaSource, len(srcs))
	for i, s := range srcs {
		out[i] = AsDeltaSource(s)
	}
	return out
}

// pollWindow is the refetch-until-covered core shared by Watch and
// DeltaWatch: it refetches src's canonical sequence (up to retries
// extra attempts) until a payload covers [0, target), then returns the
// window [cursor, target). Transient errors and short payloads consume
// the budget; permanent errors and cancellation abort immediately.
// Because a delivered window always comes from a payload that covered
// it, content and order depend only on the canonical sequence — never
// on the fault schedule.
func pollWindow[T any](ctx context.Context, id string,
	fetch func(context.Context) ([]T, error), cursor, target, retries int) ([]T, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		items, err := fetch(ctx)
		if err != nil {
			if errors.Is(err, ErrPermanent) || ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			continue
		}
		if len(items) < target {
			lastErr = fmt.Errorf("source: %s delivered %d items, need %d: %w",
				id, len(items), target, ErrShortSource)
			continue
		}
		return items[cursor:target], nil
	}
	return nil, fmt.Errorf("source: watch poll on %s exhausted %d attempts: %w",
		id, retries+1, lastErr)
}

// DeltaEpoch is one batch of changes across the watched fleet — the
// mutable-stream analogue of Epoch.
type DeltaEpoch struct {
	// Seq numbers epochs from StreamConfig.StartSeq upward.
	Seq int
	// Deltas holds this epoch's changes in delivery order: sources in
	// ascending ID order, each source's deltas in canonical log order.
	Deltas []Delta
	// Cursors snapshots, per source ID, how many of that source's log
	// entries have been delivered once this epoch is applied.
	Cursors map[string]int
}

// DeltaWatch is Watch over a change log: each Poll delivers the next
// (at most) epochSize deltas of the source's canonical log with the
// same refetch-until-covered determinism guarantee.
type DeltaWatch struct {
	src     DeltaSource
	total   int
	epoch   int
	retries int
	cursor  int
}

// NewDeltaWatch builds a watch over src delivering epochSize deltas
// per poll (default 100) with the given refetch budget (default 8;
// negative means none). total declares the canonical log length.
func NewDeltaWatch(src DeltaSource, total, epochSize, retries int) *DeltaWatch {
	if epochSize <= 0 {
		epochSize = 100
	}
	if retries == 0 {
		retries = 8
	}
	if retries < 0 {
		retries = 0
	}
	if total < 0 {
		total = 0
	}
	return &DeltaWatch{src: src, total: total, epoch: epochSize, retries: retries}
}

// Meta returns the watched source's metadata.
func (w *DeltaWatch) Meta() *data.Source { return w.src.Meta() }

// Cursor reports how many deltas have been delivered so far.
func (w *DeltaWatch) Cursor() int { return w.cursor }

// Seek positions the cursor (clamped to [0, total]).
func (w *DeltaWatch) Seek(cursor int) {
	if cursor < 0 {
		cursor = 0
	}
	if cursor > w.total {
		cursor = w.total
	}
	w.cursor = cursor
}

// Done reports whether the whole log has been delivered.
func (w *DeltaWatch) Done() bool { return w.cursor >= w.total }

// Poll delivers the next batch of deltas; a drained watch returns
// (nil, nil). Error classification matches Watch.Poll.
func (w *DeltaWatch) Poll(ctx context.Context) ([]Delta, error) {
	if w.Done() {
		return nil, nil
	}
	target := w.cursor + w.epoch
	if target > w.total {
		target = w.total
	}
	batch, err := pollWindow(ctx, w.Meta().ID, w.src.FetchDeltas, w.cursor, target, w.retries)
	if err != nil {
		return nil, err
	}
	w.cursor = target
	return batch, nil
}

// DeltaTotals maps each source ID to its declared log length —
// the Totals analogue for delta fleets built from in-memory logs.
func DeltaTotals(sources []DeltaSource) (map[string]int, error) {
	out := make(map[string]int, len(sources))
	for _, s := range sources {
		st, ok := s.(*DeltaStatic)
		if !ok {
			return nil, fmt.Errorf("source: no declared log length for delta source %q", s.Meta().ID)
		}
		out[st.Src.ID] = len(st.Log)
	}
	return out, nil
}

// DeltaStreamer drives a fleet of delta watches exactly like Streamer
// drives record watches: one producer polls every live watch per
// epoch, bundles the changes into a DeltaEpoch and sends it on the
// bounded channel C, closing on drain or first error.
type DeltaStreamer struct {
	// C delivers delta epochs in sequence order.
	C <-chan DeltaEpoch

	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	err error
}

// NewDeltaStreamer starts streaming the fleet. Sources are watched in
// ascending ID order (duplicate IDs rejected). cfg.Totals declares
// each source's log length; sources without an entry fall back to
// len(Log) when the source is a *DeltaStatic.
func NewDeltaStreamer(ctx context.Context, sources []DeltaSource, cfg StreamConfig) (*DeltaStreamer, error) {
	sorted, err := sortSources(sources)
	if err != nil {
		return nil, err
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4
	}
	watches := make([]*DeltaWatch, 0, len(sorted))
	for _, s := range sorted {
		id := s.Meta().ID
		total, ok := cfg.Totals[id]
		if !ok {
			st, isStatic := s.(*DeltaStatic)
			if !isStatic {
				return nil, fmt.Errorf("source: no declared total for watched delta source %q", id)
			}
			total = len(st.Log)
		}
		w := NewDeltaWatch(s, total, cfg.EpochSize, cfg.Retries)
		if c, ok := cfg.Cursors[id]; ok {
			w.Seek(c)
		}
		watches = append(watches, w)
	}

	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan DeltaEpoch, cfg.Buffer)
	str := &DeltaStreamer{C: ch, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(str.done)
		defer close(ch)
		for seq := cfg.StartSeq; ; seq++ {
			ep := DeltaEpoch{Seq: seq, Cursors: make(map[string]int, len(watches))}
			for _, w := range watches {
				ds, err := w.Poll(ctx)
				if err != nil {
					str.setErr(err)
					return
				}
				ep.Deltas = append(ep.Deltas, ds...)
				ep.Cursors[w.Meta().ID] = w.Cursor()
			}
			if len(ep.Deltas) == 0 {
				return // every source drained
			}
			select {
			case ch <- ep:
			case <-ctx.Done():
				str.setErr(ctx.Err())
				return
			}
		}
	}()
	return str, nil
}

func (s *DeltaStreamer) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Err reports why the stream stopped: nil after a clean drain. Valid
// once C is closed.
func (s *DeltaStreamer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the producer and waits for it to exit.
func (s *DeltaStreamer) Close() {
	s.cancel()
	<-s.done
}
