package source

import (
	"math/rand"
	"strings"

	"repro/internal/data"
)

// ChurnConfig tunes a synthetic churn workload built over a source's
// record list: some records first arrive in a corrupted form and are
// later corrected by a second upsert; some are later retracted. The
// zero value churns nothing (a plain upsert log).
type ChurnConfig struct {
	// Seed drives victim selection and op placement. Each source mixes
	// its ID into the seed, so per-source logs are independent but the
	// whole workload is reproducible.
	Seed int64
	// UpdateRate is the per-record probability that the record first
	// arrives with a mangled title and is corrected later.
	UpdateRate float64
	// DeleteRate is the per-record probability that the record is
	// retracted after arriving (after its correction, if it has one).
	DeleteRate float64
}

// Churn builds a deterministic delta log over recs: every record is
// upserted in canonical order; update victims arrive corrupted and are
// corrected by a later upsert of the true record; delete victims are
// retracted by a later OpDelete. It returns the log plus the set of
// IDs that end the log dead — the live set is recs minus that set,
// with every survivor at its true (corrected) version.
func Churn(recs []*data.Record, cfg ChurnConfig) ([]Delta, map[string]bool) {
	n := len(recs)
	deleted := map[string]bool{}
	if n == 0 {
		return nil, deleted
	}
	seed := cfg.Seed ^ int64(fnvChurn(recs[0].SourceID))
	rng := rand.New(rand.NewSource(seed))

	// extras[i] holds ops scheduled to land after base position i.
	extras := make([][]Delta, n)
	schedule := func(after int, d Delta) int {
		if after >= n {
			after = n - 1
		}
		extras[after] = append(extras[after], d)
		return after
	}
	corrupted := make([]bool, n)
	for i, r := range recs {
		// Fixed draw count per record (2 floats + 2 ints) keeps the
		// schedule independent of which branches fire.
		u := rng.Float64() < cfg.UpdateRate
		d := rng.Float64() < cfg.DeleteRate
		pu := i + 1 + rng.Intn(n)
		pd := i + 1 + rng.Intn(n)
		at := i
		if u {
			corrupted[i] = true
			at = schedule(pu, Upsert(r))
		}
		if d {
			if pd <= at {
				pd = at + 1 // retract only after the correction landed
			}
			schedule(pd, Deletion(r.ID))
			deleted[r.ID] = true
		}
	}

	log := make([]Delta, 0, n+n/4)
	for i, r := range recs {
		first := r
		if corrupted[i] {
			first = corruptTitle(r)
		}
		log = append(log, Upsert(first))
		log = append(log, extras[i]...)
	}
	return log, deleted
}

// corruptTitle clones r with a deterministically mangled title: one
// token dropped (or a junk token appended to single-token titles), so
// the corrupted version usually mis-clusters until corrected.
func corruptTitle(r *data.Record) *data.Record {
	c := r.Clone()
	c.Set("title", data.String(mangledTitleOf(r)))
	return c
}

func mangledTitleOf(r *data.Record) string {
	t := r.Get("title").Str
	toks := strings.Fields(t)
	if len(toks) > 1 {
		// Drop the token picked by the title's own hash — stable per
		// record, no RNG stream consumed.
		drop := int(fnvChurn(r.ID) % uint64(len(toks)))
		toks = append(toks[:drop], toks[drop+1:]...)
		return strings.Join(toks, " ")
	}
	return t + " zzchurn"
}

// ChurnSources builds one DeltaStatic per dataset source with cfg's
// churn applied, returning the fleet (sorted by source ID), the
// per-source log lengths for StreamConfig.Totals, and the union of
// end-of-log dead IDs across the fleet.
func ChurnSources(d *data.Dataset, cfg ChurnConfig) ([]DeltaSource, map[string]int, map[string]bool) {
	srcs := d.Sources()
	fleet := make([]DeltaSource, 0, len(srcs))
	totals := make(map[string]int, len(srcs))
	deleted := map[string]bool{}
	for _, s := range srcs {
		log, dead := Churn(d.SourceRecords(s.ID), cfg)
		fleet = append(fleet, &DeltaStatic{Src: s, Log: log})
		totals[s.ID] = len(log)
		for id := range dead {
			deleted[id] = true
		}
	}
	return fleet, totals, deleted
}

// fnvChurn is the FNV-1a hash of s (same as the fault injector's).
func fnvChurn(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
