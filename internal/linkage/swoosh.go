package linkage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/data"
)

// ErrNoMatcher reports a Swoosh configured without a matcher. It is a
// wrapped sentinel: errors.Is(err, ErrNoMatcher) identifies the
// misconfiguration through the facade.
var ErrNoMatcher = errors.New("linkage: matcher is nil")

// Swoosh implements R-Swoosh generic entity resolution (Benjelloun et
// al., surveyed by the tutorial's linkage discussion): records are
// resolved by alternately *matching* and *merging* — a merged record
// carries the union of its constituents' evidence and can match records
// neither constituent matched alone. The algorithm maintains a resolved
// set R; each record from the input is compared against R, merged with
// the first match (restarting comparison with the merged record), or
// added to R when nothing matches.
//
// Match/Merge must satisfy the ICAR properties (idempotence,
// commutativity, associativity, representativity) for order-independent
// results; the provided UnionMerge does.
type Swoosh struct {
	Matcher Matcher
	// Merge combines two records into one. Default UnionMerge.
	Merge func(a, b *data.Record) *data.Record
}

// UnionMerge merges b into a copy of a: multi-valued union is
// approximated by keeping a's value and adopting b's values for
// attributes a lacks (evidence accumulation without conflict
// resolution, which is fusion's job downstream).
func UnionMerge(a, b *data.Record) *data.Record {
	out := a.Clone()
	for attr, v := range b.Fields {
		if !out.Has(attr) {
			out.Set(attr, v)
		}
	}
	return out
}

// resolved pairs a merged record with the input record IDs it covers.
type resolved struct {
	rec *data.Record
	ids []string
}

// Resolve runs R-Swoosh over the records and returns the clustering of
// input record IDs plus the merged representative records (one per
// cluster, with synthetic IDs "merged-<i>").
func (s Swoosh) Resolve(records []*data.Record) (data.Clustering, []*data.Record, error) {
	if s.Matcher == nil {
		return nil, nil, fmt.Errorf("linkage: swoosh requires a matcher: %w", ErrNoMatcher)
	}
	merge := s.Merge
	if merge == nil {
		merge = UnionMerge
	}

	var r []*resolved
	queue := make([]*resolved, 0, len(records))
	for _, rec := range records {
		queue = append(queue, &resolved{rec: rec.Clone(), ids: []string{rec.ID}})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		matchedIdx := -1
		for i, other := range r {
			if _, ok := s.Matcher.Match(cur.rec, other.rec); ok {
				matchedIdx = i
				break
			}
		}
		if matchedIdx < 0 {
			r = append(r, cur)
			continue
		}
		// Merge and re-queue: the merged record may now match further
		// resolved records (the "snowball" that gives Swoosh its power).
		other := r[matchedIdx]
		r = append(r[:matchedIdx], r[matchedIdx+1:]...)
		merged := &resolved{
			rec: merge(other.rec, cur.rec),
			ids: append(append([]string(nil), other.ids...), cur.ids...),
		}
		queue = append(queue, merged)
	}

	var clusters data.Clustering
	var reps []*data.Record
	// Deterministic output order.
	sort.Slice(r, func(i, j int) bool {
		return minID(r[i].ids) < minID(r[j].ids)
	})
	for i, res := range r {
		ids := append([]string(nil), res.ids...)
		sort.Strings(ids)
		clusters = append(clusters, ids)
		rep := res.rec.Clone()
		rep.ID = fmt.Sprintf("merged-%d", i)
		reps = append(reps, rep)
	}
	return clusters.Normalize(), reps, nil
}

func minID(ids []string) string {
	m := ids[0]
	for _, id := range ids[1:] {
		if id < m {
			m = id
		}
	}
	return m
}
