package linkage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/similarity"
)

// swooshMatcher matches on any exact shared identifier field among
// pid1/pid2 — the classic Swoosh scenario where different records carry
// different subsets of identifiers.
func swooshMatcher() Matcher {
	return RuleMatcher{Exact: []string{"pid1", "pid2"}}
}

func TestSwooshSnowballMerging(t *testing.T) {
	// r1 and r2 share pid1; r2 and r3 share pid2; r1 and r3 share
	// nothing directly. Pairwise matching + connected components links
	// them via r2, but Swoosh does so through MERGING: after r1+r2
	// merge, the merged record carries both identifiers and captures r3
	// even if r2 had been consumed already. The key test: merge-then-
	// match equals the transitive closure here, with union evidence in
	// the representative.
	r1 := data.NewRecord("r1", "s1").Set("pid1", data.String("A")).Set("color", data.String("red"))
	r2 := data.NewRecord("r2", "s2").Set("pid1", data.String("A")).Set("pid2", data.String("B"))
	r3 := data.NewRecord("r3", "s3").Set("pid2", data.String("B")).Set("weight", data.Number(5))
	r4 := data.NewRecord("r4", "s4").Set("pid1", data.String("Z"))

	clusters, reps, err := Swoosh{Matcher: swooshMatcher()}.Resolve([]*data.Record{r1, r2, r3, r4})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if len(clusters[0]) != 3 {
		t.Fatalf("first cluster = %v, want r1,r2,r3", clusters[0])
	}
	// The representative accumulates evidence from all three records.
	rep := reps[0]
	if !rep.Has("pid1") || !rep.Has("pid2") || !rep.Has("color") || !rep.Has("weight") {
		t.Errorf("merged representative lost evidence: %v", rep)
	}
}

func TestSwooshOrderIndependence(t *testing.T) {
	base := []*data.Record{
		data.NewRecord("a", "s").Set("pid1", data.String("X")),
		data.NewRecord("b", "s").Set("pid1", data.String("X")).Set("pid2", data.String("Y")),
		data.NewRecord("c", "s").Set("pid2", data.String("Y")),
		data.NewRecord("d", "s").Set("pid1", data.String("Q")),
		data.NewRecord("e", "s").Set("pid2", data.String("Q2")),
	}
	ref, _, err := Swoosh{Matcher: swooshMatcher()}.Resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]*data.Record(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, _, err := Swoosh{Matcher: swooshMatcher()}.Resolve(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("order-dependent result:\n%v\nvs\n%v", got, ref)
		}
	}
}

func TestSwooshMergedRecordEnablesNewMatches(t *testing.T) {
	// Similarity scenario: two partial descriptions individually below
	// the threshold against a third, but their union clears it.
	full := data.NewRecord("full", "s1").Set("title", data.String("alpha beta gamma delta")).Set("pid1", data.String("K"))
	part1 := data.NewRecord("part1", "s2").Set("title", data.String("alpha beta")).Set("pid1", data.String("K"))
	part2 := data.NewRecord("part2", "s3").Set("title", data.String("alpha beta gamma"))

	// part2 vs part1: jaccard 2/3 >= 0.6 → merge; merged keeps part1's
	// title ("alpha beta", UnionMerge keeps first) — order matters for
	// which title survives, so run with a combined matcher that also
	// honours pid equality for the full record.
	combined := RuleMatcher{Exact: []string{"pid1"}, Comparator: similarity.UniformComparator(similarity.Jaccard, "title"), Threshold: 0.6}
	clusters, _, err := Swoosh{Matcher: combined}.Resolve([]*data.Record{full, part1, part2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("want one entity, got %v", clusters)
	}
}

func TestSwooshRequiresMatcher(t *testing.T) {
	if _, _, err := (Swoosh{}).Resolve(nil); err == nil {
		t.Error("missing matcher must error")
	}
}

func TestSwooshEmptyAndSingleton(t *testing.T) {
	clusters, reps, err := Swoosh{Matcher: swooshMatcher()}.Resolve(nil)
	if err != nil || len(clusters) != 0 || len(reps) != 0 {
		t.Error("empty input must resolve to nothing")
	}
	one := []*data.Record{data.NewRecord("x", "s").Set("pid1", data.String("1"))}
	clusters, reps, err = Swoosh{Matcher: swooshMatcher()}.Resolve(one)
	if err != nil || len(clusters) != 1 || len(reps) != 1 {
		t.Errorf("singleton: %v %v %v", clusters, reps, err)
	}
}

func TestUnionMerge(t *testing.T) {
	a := data.NewRecord("a", "s").Set("x", data.String("keep")).Set("y", data.Number(1))
	b := data.NewRecord("b", "s").Set("x", data.String("drop")).Set("z", data.Bool(true))
	m := UnionMerge(a, b)
	if m.Get("x").Str != "keep" {
		t.Error("first record's value must win on conflict")
	}
	if !m.Has("y") || !m.Has("z") {
		t.Error("union must keep both sides' extra attributes")
	}
	// Inputs untouched.
	if a.Has("z") || b.Has("y") {
		t.Error("merge must not mutate inputs")
	}
}
