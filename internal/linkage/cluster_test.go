package linkage

import (
	"testing"

	"repro/internal/data"
)

func edge(a, b string, s float64) data.ScoredPair {
	return data.ScoredPair{Pair: data.NewPair(a, b), Score: s}
}

func TestConnectedComponents(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	edges := []data.ScoredPair{edge("a", "b", 0.9), edge("b", "c", 0.8)}
	got := ConnectedComponents{}.Cluster(ids, edges)
	want := data.Clustering{{"a", "b", "c"}, {"d"}, {"e"}}.Normalize()
	assertClusteringEqual(t, got, want)
}

func TestCenterResistsChaining(t *testing.T) {
	// Chain a-b-c-d with strong ends and a weak middle edge: connected
	// components glues all four; center clustering keeps two clusters.
	ids := []string{"a", "b", "c", "d"}
	edges := []data.ScoredPair{
		edge("a", "b", 0.95),
		edge("c", "d", 0.9),
		edge("b", "c", 0.55), // the spurious bridge
	}
	cc := ConnectedComponents{}.Cluster(ids, edges)
	if len(cc) != 1 {
		t.Fatalf("connected components = %v, want single cluster", cc)
	}
	ct := Center{}.Cluster(ids, edges)
	if len(ct) != 2 {
		t.Fatalf("center clustering = %v, want 2 clusters", ct)
	}
	assertSame(t, ct, "a", "b")
	assertSame(t, ct, "c", "d")
}

func TestCenterSatelliteDoesNotRecruit(t *testing.T) {
	// b joins center a; then edge (b,x) must NOT pull x into a's
	// cluster; x waits and becomes available for a later edge/center.
	ids := []string{"a", "b", "x"}
	edges := []data.ScoredPair{
		edge("a", "b", 0.9),
		edge("b", "x", 0.8),
	}
	got := Center{}.Cluster(ids, edges)
	assertSame(t, got, "a", "b")
	if same(got, "a", "x") {
		t.Errorf("satellite must not recruit: %v", got)
	}
}

func TestMergeCenterMergesLinkedCenters(t *testing.T) {
	// Two centers a and c, satellites b and d; a later direct edge
	// between satellites' centers (a,c) merges the clusters.
	ids := []string{"a", "b", "c", "d"}
	edges := []data.ScoredPair{
		edge("a", "b", 0.95),
		edge("c", "d", 0.9),
		edge("a", "c", 0.85),
	}
	center := Center{}.Cluster(ids, edges)
	if len(center) != 2 {
		t.Fatalf("center = %v, want 2 clusters", center)
	}
	merged := MergeCenter{}.Cluster(ids, edges)
	if len(merged) != 1 {
		t.Fatalf("merge-center = %v, want 1 cluster", merged)
	}
}

func TestCorrelationClustering(t *testing.T) {
	// Dense triangle plus weakly attached node: pivot clustering puts
	// the triangle together; the weak node needs score >= MinScore.
	ids := []string{"a", "b", "c", "z"}
	edges := []data.ScoredPair{
		edge("a", "b", 0.9), edge("b", "c", 0.9), edge("a", "c", 0.9),
		edge("c", "z", 0.2),
	}
	got := CorrelationClustering{MinScore: 0.5}.Cluster(ids, edges)
	assertSame(t, got, "a", "b")
	assertSame(t, got, "b", "c")
	if same(got, "c", "z") {
		t.Errorf("weak edge must be filtered: %v", got)
	}
	loose := CorrelationClustering{MinScore: 0.1}.Cluster(ids, edges)
	if !same(loose, "c", "z") {
		t.Errorf("with low MinScore the weak edge may join: %v", loose)
	}
}

func TestClusterersCoverAllIDs(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "lonely"}
	edges := []data.ScoredPair{edge("a", "b", 0.9), edge("c", "d", 0.8)}
	for name, c := range map[string]Clusterer{
		"cc":     ConnectedComponents{},
		"center": Center{},
		"merge":  MergeCenter{},
		"corr":   CorrelationClustering{},
	} {
		got := c.Cluster(ids, edges)
		seen := map[string]bool{}
		for _, cl := range got {
			for _, id := range cl {
				if seen[id] {
					t.Errorf("%s: id %s in two clusters", name, id)
				}
				seen[id] = true
			}
		}
		for _, id := range ids {
			if !seen[id] {
				t.Errorf("%s: id %s missing from clustering", name, id)
			}
		}
	}
}

func TestClusterersEmptyInput(t *testing.T) {
	for name, c := range map[string]Clusterer{
		"cc": ConnectedComponents{}, "center": Center{},
		"merge": MergeCenter{}, "corr": CorrelationClustering{},
	} {
		if got := c.Cluster(nil, nil); len(got) != 0 {
			t.Errorf("%s: empty input gave %v", name, got)
		}
	}
}

func same(c data.Clustering, a, b string) bool {
	asg := c.Assignment()
	ia, oka := asg[a]
	ib, okb := asg[b]
	return oka && okb && ia == ib
}

func assertSame(t *testing.T, c data.Clustering, a, b string) {
	t.Helper()
	if !same(c, a, b) {
		t.Errorf("%s and %s should share a cluster: %v", a, b, c)
	}
}

func assertClusteringEqual(t *testing.T, got, want data.Clustering) {
	t.Helper()
	g, w := got.Normalize(), want.Normalize()
	if len(g) != len(w) {
		t.Fatalf("got %v, want %v", g, w)
	}
	for i := range g {
		if len(g[i]) != len(w[i]) {
			t.Fatalf("cluster %d: got %v, want %v", i, g[i], w[i])
		}
		for j := range g[i] {
			if g[i][j] != w[i][j] {
				t.Fatalf("cluster %d: got %v, want %v", i, g[i], w[i])
			}
		}
	}
}
