package linkage

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/similarity"
)

// FellegiSunter is the classic probabilistic record-linkage model: each
// candidate pair is reduced to a binary agreement vector over comparison
// fields; the model holds per-field conditional agreement probabilities
// m_i = P(agree_i | match) and u_i = P(agree_i | non-match) plus the
// match prior. Parameters are estimated without labels by
// expectation-maximisation over the candidate pairs (Winkler's
// unsupervised EM). Decisions threshold the match posterior.
type FellegiSunter struct {
	Comparator *similarity.RecordComparator
	// AgreeAt binarises field similarity: sim >= AgreeAt counts as
	// agreement. Default 0.8.
	AgreeAt float64
	// Posterior decision threshold. Default 0.9.
	Threshold float64

	m, u  []float64 // per-field conditional probabilities
	prior float64   // P(match)
}

// NewFellegiSunter returns an untrained model with sensible defaults.
func NewFellegiSunter(c *similarity.RecordComparator) *FellegiSunter {
	return &FellegiSunter{Comparator: c, AgreeAt: 0.8, Threshold: 0.9}
}

// PrepareIndex implements IndexPreparer: the comparison-vector path
// (agreement vectors during EM training and posterior scoring) reads
// the comparator's cached per-record features.
func (fs *FellegiSunter) PrepareIndex(d *data.Dataset, candidates []data.Pair) {
	PrepareComparatorIndex(fs.Comparator, d, candidates)
}

// PrepareIndexIDs implements IDIndexPreparer for the streaming path.
func (fs *FellegiSunter) PrepareIndexIDs(d *data.Dataset, ids []string) {
	PrepareComparatorIndexIDs(fs.Comparator, d, ids)
}

// agreementVector binarises the comparator's field scores: 1 = agree,
// 0 = disagree, -1 = not comparable (missing from both). scratch, when
// non-nil, must have length len(Fields()) and is reused for the raw
// scores.
func (fs *FellegiSunter) agreementVector(a, b *data.Record, scratch []float64) []int {
	if scratch == nil {
		scratch = make([]float64, len(fs.Comparator.Fields()))
	}
	fs.Comparator.FieldScoresInto(scratch, a, b)
	out := make([]int, len(scratch))
	for i, s := range scratch {
		switch {
		case s < 0:
			out[i] = -1
		case s >= fs.AgreeAt:
			out[i] = 1
		default:
			out[i] = 0
		}
	}
	return out
}

// Train runs EM over the candidate pairs. iterations defaults to 20
// when <= 0. It returns an error when there are no fields or no pairs.
func (fs *FellegiSunter) Train(d *data.Dataset, candidates []data.Pair, iterations int) error {
	k := len(fs.Comparator.Fields())
	if k == 0 {
		return fmt.Errorf("linkage: comparator has no fields")
	}
	if len(candidates) == 0 {
		return fmt.Errorf("linkage: no candidate pairs to train on")
	}
	if iterations <= 0 {
		iterations = 20
	}
	fs.PrepareIndex(d, candidates)

	scratch := make([]float64, k)
	vectors := make([][]int, 0, len(candidates))
	for _, p := range candidates {
		a, b := d.Record(p.A), d.Record(p.B)
		if a == nil || b == nil {
			continue
		}
		vectors = append(vectors, fs.agreementVector(a, b, scratch))
	}
	if len(vectors) == 0 {
		return fmt.Errorf("linkage: candidates reference no known records")
	}

	// Initialisation: matches agree often (m=0.9); the non-match
	// agreement rate u is seeded from the data. Candidates are mostly
	// non-matches, so the empirical per-field agreement rate r ≈
	// prior·m + (1−prior)·u; solving for u with the assumed prior makes
	// the two mixture components identifiable from the first E-step.
	fs.prior = 0.1
	fs.m = make([]float64, k)
	fs.u = make([]float64, k)
	agreeN := make([]float64, k)
	seenN := make([]float64, k)
	for _, vec := range vectors {
		for i, a := range vec {
			if a < 0 {
				continue
			}
			seenN[i]++
			if a == 1 {
				agreeN[i]++
			}
		}
	}
	for i := 0; i < k; i++ {
		fs.m[i] = 0.9
		rate := 0.1
		if seenN[i] > 0 {
			rate = agreeN[i] / seenN[i]
		}
		u := (rate - fs.prior*fs.m[i]) / (1 - fs.prior)
		fs.u[i] = clamp(u, 0.01, 0.8)
	}

	const eps = 1e-4
	for iter := 0; iter < iterations; iter++ {
		// E-step: posterior match probability per vector.
		post := make([]float64, len(vectors))
		for vi, vec := range vectors {
			pm, pu := fs.prior, 1-fs.prior
			for i, a := range vec {
				switch a {
				case 1:
					pm *= fs.m[i]
					pu *= fs.u[i]
				case 0:
					pm *= 1 - fs.m[i]
					pu *= 1 - fs.u[i]
				}
			}
			if pm+pu == 0 {
				post[vi] = fs.prior
			} else {
				post[vi] = pm / (pm + pu)
			}
		}
		// M-step.
		var sumPost float64
		mNum := make([]float64, k)
		mDen := make([]float64, k)
		uNum := make([]float64, k)
		uDen := make([]float64, k)
		for vi, vec := range vectors {
			g := post[vi]
			sumPost += g
			for i, a := range vec {
				if a < 0 {
					continue
				}
				mDen[i] += g
				uDen[i] += 1 - g
				if a == 1 {
					mNum[i] += g
					uNum[i] += 1 - g
				}
			}
		}
		fs.prior = clamp(sumPost/float64(len(vectors)), eps, 1-eps)
		for i := 0; i < k; i++ {
			if mDen[i] > 0 {
				fs.m[i] = clamp(mNum[i]/mDen[i], eps, 1-eps)
			}
			if uDen[i] > 0 {
				fs.u[i] = clamp(uNum[i]/uDen[i], eps, 1-eps)
			}
		}
		// Keep the components identified: the "match" class is the one
		// with higher agreement rates. Swap if EM drifted mirror-image.
		if meanSlice(fs.m) < meanSlice(fs.u) {
			fs.m, fs.u = fs.u, fs.m
			fs.prior = clamp(1-fs.prior, eps, 1-eps)
		}
	}
	return nil
}

// Posterior returns the model's match probability for a pair.
func (fs *FellegiSunter) Posterior(a, b *data.Record) float64 {
	if fs.m == nil {
		return 0
	}
	pm, pu := fs.prior, 1-fs.prior
	for i, ag := range fs.agreementVector(a, b, nil) {
		switch ag {
		case 1:
			pm *= fs.m[i]
			pu *= fs.u[i]
		case 0:
			pm *= 1 - fs.m[i]
			pu *= 1 - fs.u[i]
		}
	}
	if pm+pu == 0 {
		return 0
	}
	return pm / (pm + pu)
}

// LogLikelihoodRatio returns the FS match weight sum_i log2(m_i/u_i)
// over agreeing fields plus log2((1-m_i)/(1-u_i)) over disagreeing
// ones — the classical decision score.
func (fs *FellegiSunter) LogLikelihoodRatio(a, b *data.Record) float64 {
	if fs.m == nil {
		return math.Inf(-1)
	}
	var w float64
	for i, ag := range fs.agreementVector(a, b, nil) {
		switch ag {
		case 1:
			w += math.Log2(fs.m[i] / fs.u[i])
		case 0:
			w += math.Log2((1 - fs.m[i]) / (1 - fs.u[i]))
		}
	}
	return w
}

// Match implements Matcher using the posterior threshold.
func (fs *FellegiSunter) Match(a, b *data.Record) (float64, bool) {
	p := fs.Posterior(a, b)
	return p, p >= fs.Threshold
}

// Params exposes the trained parameters (copies) for inspection.
func (fs *FellegiSunter) Params() (m, u []float64, prior float64) {
	return append([]float64(nil), fs.m...), append([]float64(nil), fs.u...), fs.prior
}

func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}

func meanSlice(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
