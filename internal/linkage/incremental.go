package linkage

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// Incremental maintains a linkage result under a stream of record
// insertions — the Velocity answer to re-running batch linkage on every
// snapshot. New records are compared only against records sharing a
// blocking key (an inverted index is maintained online) and merged into
// existing clusters via union-find. Cost per insert is proportional to
// the record's block sizes, not to the corpus.
type Incremental struct {
	Key     func(r *data.Record) []string
	Matcher Matcher
	// MaxBlock is the online analogue of block purging: once a key's
	// posting list exceeds MaxBlock entries the key is treated as a
	// stop-token — new records still join the list (it may matter for
	// other keys' statistics) but no comparisons are generated from it.
	// Rare keys (model numbers, brand+series) carry the recall.
	// Default 64.
	MaxBlock int

	dataset *data.Dataset
	index   map[string][]string // key → record IDs
	uf      *UnionFind
	n       int
	// comparisons counts pairwise match calls, for the E7 cost metric.
	comparisons int
}

// NewIncremental returns an empty incremental linker over its own
// internal dataset.
func NewIncremental(key func(r *data.Record) []string, m Matcher) *Incremental {
	return &Incremental{
		Key:      key,
		Matcher:  m,
		MaxBlock: 64,
		dataset:  data.NewDataset(),
		index:    map[string][]string{},
		uf:       NewUnionFind(),
	}
}

// TitleTokenKey is the default incremental blocking key: distinct
// normalised title tokens, in sorted order. Key order is the posting
// lists' probe order and therefore Insert's match order, so it must
// not inherit WordSet's random map iteration.
func TitleTokenKey(r *data.Record) []string {
	set := tokenize.WordSet(r.Get("title").String())
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Insert adds a record, links it against its block neighbours and
// returns the IDs of the records it matched.
func (inc *Incremental) Insert(src *data.Source, r *data.Record) ([]string, error) {
	if inc.dataset.Source(src.ID) == nil {
		if err := inc.dataset.AddSource(src); err != nil {
			return nil, err
		}
	}
	if err := inc.dataset.AddRecord(r); err != nil {
		return nil, fmt.Errorf("linkage: incremental insert: %w", err)
	}
	inc.uf.Add(r.ID)
	inc.n++

	seen := map[string]bool{r.ID: true}
	var matched []string
	for _, k := range dedupeKeys(inc.Key(r)) {
		ids := inc.index[k]
		if inc.MaxBlock <= 0 || len(ids) <= inc.MaxBlock {
			for _, other := range ids {
				if seen[other] {
					continue
				}
				seen[other] = true
				inc.comparisons++
				if _, ok := inc.Matcher.Match(r, inc.dataset.Record(other)); ok {
					inc.uf.Union(r.ID, other)
					matched = append(matched, other)
				}
			}
		}
		inc.index[k] = append(inc.index[k], r.ID)
	}
	return matched, nil
}

// Clusters returns the current clustering.
func (inc *Incremental) Clusters() data.Clustering {
	var out data.Clustering
	for _, set := range inc.uf.Sets() {
		out = append(out, set)
	}
	return out.Normalize()
}

// Len returns the number of inserted records.
func (inc *Incremental) Len() int { return inc.n }

// Comparisons returns the cumulative number of pairwise match calls.
func (inc *Incremental) Comparisons() int { return inc.comparisons }

// Dataset exposes the accumulated records (read-only use).
func (inc *Incremental) Dataset() *data.Dataset { return inc.dataset }

// IncrementalState is the serializable core of an incremental linker:
// everything Insert consults to decide future comparisons. Posting
// lists and records keep insertion order — the probe order — so a
// restored linker compares exactly the pairs the original would have,
// and the partition is stored in Sets' canonical form, so Clusters()
// of a restored linker is byte-identical to the original's regardless
// of the union-find's internal tree shape.
type IncrementalState struct {
	Sources     []*data.Source
	Records     []*data.Record // insertion order
	Postings    map[string][]string
	Partition   [][]string // canonical (Sets) form
	Comparisons int
}

// State snapshots the linker. The returned state shares the records
// and sources with the linker (they are never mutated after Insert);
// the posting lists and partition are copied, so later Inserts don't
// bleed into a taken snapshot.
func (inc *Incremental) State() *IncrementalState {
	// Sets orders sets by their union-find root — an artifact of union
	// order that differs between equivalent forests — so the partition
	// is re-sorted by first member (members are already sorted) to make
	// equal partitions encode identically.
	partition := inc.uf.Sets()
	sort.Slice(partition, func(i, j int) bool { return partition[i][0] < partition[j][0] })
	st := &IncrementalState{
		Sources:     inc.dataset.Sources(),
		Records:     inc.dataset.Records(),
		Postings:    make(map[string][]string, len(inc.index)),
		Partition:   partition,
		Comparisons: inc.comparisons,
	}
	for k, ids := range inc.index {
		st.Postings[k] = append([]string(nil), ids...)
	}
	return st
}

// FromState rebuilds a linker equivalent to the one State captured,
// under the given key function and matcher (function values can't be
// serialized; the caller re-supplies the configuration the state was
// built under — a different key or matcher silently changes future
// linkage decisions). MaxBlock is restored to the default; override it
// after construction if the original differed.
func FromState(st *IncrementalState, key func(r *data.Record) []string, m Matcher) (*Incremental, error) {
	inc := NewIncremental(key, m)
	for _, s := range st.Sources {
		if err := inc.dataset.AddSource(s); err != nil {
			return nil, fmt.Errorf("linkage: restore source: %w", err)
		}
	}
	for _, r := range st.Records {
		if err := inc.dataset.AddRecord(r); err != nil {
			return nil, fmt.Errorf("linkage: restore record: %w", err)
		}
		inc.uf.Add(r.ID)
		inc.n++
	}
	for k, ids := range st.Postings {
		inc.index[k] = append([]string(nil), ids...)
	}
	for _, set := range st.Partition {
		for i := 1; i < len(set); i++ {
			inc.uf.Union(set[0], set[i])
		}
	}
	inc.comparisons = st.Comparisons
	return inc, nil
}

func dedupeKeys(keys []string) []string {
	seen := map[string]bool{}
	out := keys[:0:0]
	for _, k := range keys {
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}
