package linkage

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// Incremental maintains a linkage result under a stream of record
// insertions, updates and deletions — the Velocity answer to re-running
// batch linkage on every snapshot. New records are compared only
// against records sharing a blocking key (an inverted index is
// maintained online) and merged into existing clusters via union-find.
// Cost per insert is proportional to the record's block sizes, not to
// the corpus.
//
// Deletion is tombstoning: the dead record leaves the dataset and the
// partition immediately (its component is reclustered), but its posting
// entries stay behind as garbage until Compact rewrites the lists —
// probes skip tombstoned IDs, so match behaviour is identical whether
// or not a compaction has run.
type Incremental struct {
	Key     func(r *data.Record) []string
	Matcher Matcher
	// MaxBlock is the online analogue of block purging: once a key's
	// posting list exceeds MaxBlock live entries the key is treated as a
	// stop-token — new records still join the list (it may matter for
	// other keys' statistics) but no comparisons are generated from it.
	// Rare keys (model numbers, brand+series) carry the recall.
	// Default 64.
	MaxBlock int

	dataset *data.Dataset
	index   map[string][]string // key → record IDs (may contain tombstoned IDs)
	uf      *UnionFind
	n       int
	// comparisons counts pairwise match calls, for the E7 cost metric.
	comparisons int

	// dead maps each tombstoned record ID to the posting keys it still
	// occupies — exactly dedupeKeys(Key(r)) at death, since records are
	// never mutated after insert. Entries leave via Compact or when the
	// ID is re-inserted (the stale slots are exhumed first, so a revived
	// record is only ever probed under its current keys).
	dead map[string][]string
	// postRefs counts every posting-list slot (live + dead); deadRefs
	// counts the tombstoned ones. Their ratio is the garbage metric
	// compaction triggers on.
	postRefs int
	deadRefs int
}

// NewIncremental returns an empty incremental linker over its own
// internal dataset.
func NewIncremental(key func(r *data.Record) []string, m Matcher) *Incremental {
	return &Incremental{
		Key:      key,
		Matcher:  m,
		MaxBlock: 64,
		dataset:  data.NewDataset(),
		index:    map[string][]string{},
		uf:       NewUnionFind(),
		dead:     map[string][]string{},
	}
}

// TitleTokenKey is the default incremental blocking key: distinct
// normalised title tokens, in sorted order. Key order is the posting
// lists' probe order and therefore Insert's match order, so it must
// not inherit WordSet's random map iteration.
func TitleTokenKey(r *data.Record) []string {
	set := tokenize.WordSet(r.Get("title").String())
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Insert adds a record, links it against its block neighbours and
// returns the IDs of the records it matched. Inserting an ID that is
// currently tombstoned revives it: the stale posting slots from its
// previous life are exhumed first, so the record is only ever probed
// under the keys of the version being inserted.
func (inc *Incremental) Insert(src *data.Source, r *data.Record) ([]string, error) {
	if inc.dataset.Source(src.ID) == nil {
		if err := inc.dataset.AddSource(src); err != nil {
			return nil, err
		}
	}
	if keys, ok := inc.dead[r.ID]; ok {
		inc.exhume(r.ID, keys)
	}
	if err := inc.dataset.AddRecord(r); err != nil {
		return nil, fmt.Errorf("linkage: incremental insert: %w", err)
	}
	inc.uf.Add(r.ID)
	inc.n++

	seen := map[string]bool{r.ID: true}
	var matched []string
	for _, k := range dedupeKeys(inc.Key(r)) {
		ids := inc.index[k]
		live := ids
		if inc.deadRefs > 0 {
			live = make([]string, 0, len(ids))
			for _, id := range ids {
				if _, gone := inc.dead[id]; !gone {
					live = append(live, id)
				}
			}
		}
		// The stop-token gate counts live entries only, so match
		// decisions do not depend on whether a compaction has already
		// swept this list.
		if inc.MaxBlock <= 0 || len(live) <= inc.MaxBlock {
			for _, other := range live {
				if seen[other] {
					continue
				}
				seen[other] = true
				inc.comparisons++
				if _, ok := inc.Matcher.Match(r, inc.dataset.Record(other)); ok {
					inc.uf.Union(r.ID, other)
					matched = append(matched, other)
				}
			}
		}
		inc.index[k] = append(ids, r.ID)
		inc.postRefs++
	}
	return matched, nil
}

// Upsert inserts r, first retracting any live record with the same ID —
// the update half of a mutable stream. It reports the IDs the new
// version matched and whether an old version was replaced.
func (inc *Incremental) Upsert(src *data.Source, r *data.Record) (matched []string, updated bool, err error) {
	if inc.dataset.Record(r.ID) != nil {
		inc.Delete(r.ID)
		updated = true
	}
	matched, err = inc.Insert(src, r)
	return matched, updated, err
}

// Delete retracts a record: it leaves the dataset immediately, its
// cluster component is deterministically reclustered without it, and
// its posting slots are tombstoned (skipped by probes, reclaimed by
// Compact). Deleting an unknown or already-deleted ID is a no-op
// reporting false — duplicate and early deletes from a dirty upstream
// must not corrupt state.
func (inc *Incremental) Delete(id string) bool {
	r := inc.dataset.Record(id)
	if r == nil {
		return false
	}
	inc.recluster(id)
	keys := dedupeKeys(inc.Key(r))
	inc.dataset.RemoveRecord(id)
	inc.n--
	inc.dead[id] = keys
	inc.deadRefs += len(keys)
	return true
}

// recluster rebuilds the union-find partition without id: every other
// component carries over verbatim; the members of id's component are
// re-linked by exhaustive pairwise matching in sorted order, so records
// that were only transitively connected through the deleted record
// split apart. Deterministic: Sets() and the pair order are canonical.
func (inc *Incremental) recluster(id string) {
	rebuilt := NewUnionFind()
	for _, set := range inc.uf.Sets() {
		idx := -1
		for i, m := range set {
			if m == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			rebuilt.Add(set[0])
			for i := 1; i < len(set); i++ {
				rebuilt.Union(set[0], set[i])
			}
			continue
		}
		rest := make([]string, 0, len(set)-1)
		rest = append(rest, set[:idx]...)
		rest = append(rest, set[idx+1:]...)
		for _, m := range rest {
			rebuilt.Add(m)
		}
		for i := 0; i < len(rest); i++ {
			for j := i + 1; j < len(rest); j++ {
				inc.comparisons++
				if _, ok := inc.Matcher.Match(inc.dataset.Record(rest[i]), inc.dataset.Record(rest[j])); ok {
					rebuilt.Union(rest[i], rest[j])
				}
			}
		}
	}
	inc.uf = rebuilt
}

// exhume removes the stale posting slots of a tombstoned ID (first
// occurrence in each of its death keys) ahead of its re-insertion.
func (inc *Incremental) exhume(id string, keys []string) {
	for _, k := range keys {
		ids := inc.index[k]
		for i, other := range ids {
			if other == id {
				inc.index[k] = append(ids[:i], ids[i+1:]...)
				inc.postRefs--
				inc.deadRefs--
				break
			}
		}
		if len(inc.index[k]) == 0 {
			delete(inc.index, k)
		}
	}
	delete(inc.dead, id)
}

// Compact rewrites every posting list dropping tombstoned slots and
// clears the tombstone set — the garbage-collection half of deletion.
// List order of surviving entries is preserved, so probe behaviour
// (and therefore all future match decisions) is unchanged; only the
// encoded state shrinks. It reports how many posting slots, emptied
// keys and tombstones were reclaimed.
func (inc *Incremental) Compact() (slots, keys, tombstones int) {
	if len(inc.dead) == 0 {
		return 0, 0, 0
	}
	for k, ids := range inc.index {
		keep := ids[:0]
		for _, id := range ids {
			if _, gone := inc.dead[id]; gone {
				slots++
			} else {
				keep = append(keep, id)
			}
		}
		if len(keep) == 0 {
			delete(inc.index, k)
			keys++
		} else {
			inc.index[k] = keep
		}
	}
	tombstones = len(inc.dead)
	inc.dead = map[string][]string{}
	inc.postRefs -= slots
	inc.deadRefs = 0
	return slots, keys, tombstones
}

// Tombstones reports how many deleted IDs still occupy posting slots.
func (inc *Incremental) Tombstones() int { return len(inc.dead) }

// GarbageRatio reports the fraction of posting slots owned by
// tombstoned IDs — the metric a compaction trigger thresholds on.
func (inc *Incremental) GarbageRatio() float64 {
	if inc.postRefs == 0 {
		return 0
	}
	return float64(inc.deadRefs) / float64(inc.postRefs)
}

// Clusters returns the current clustering.
func (inc *Incremental) Clusters() data.Clustering {
	var out data.Clustering
	for _, set := range inc.uf.Sets() {
		out = append(out, set)
	}
	return out.Normalize()
}

// Len returns the number of inserted records.
func (inc *Incremental) Len() int { return inc.n }

// Comparisons returns the cumulative number of pairwise match calls.
func (inc *Incremental) Comparisons() int { return inc.comparisons }

// Dataset exposes the accumulated records (read-only use).
func (inc *Incremental) Dataset() *data.Dataset { return inc.dataset }

// IncrementalState is the serializable core of an incremental linker:
// everything Insert consults to decide future comparisons. Posting
// lists and records keep insertion order — the probe order — so a
// restored linker compares exactly the pairs the original would have,
// and the partition is stored in Sets' canonical form, so Clusters()
// of a restored linker is byte-identical to the original's regardless
// of the union-find's internal tree shape.
type IncrementalState struct {
	Sources     []*data.Source
	Records     []*data.Record // insertion order, live records only
	Postings    map[string][]string
	Partition   [][]string // canonical (Sets) form, live records only
	Comparisons int
	// Tombstones maps each deleted ID still occupying posting slots to
	// the keys it occupies. Empty after a compaction (and always empty
	// in pre-deletion v1 state files).
	Tombstones map[string][]string
}

// State snapshots the linker. The returned state shares the records
// and sources with the linker (they are never mutated after Insert);
// the posting lists and partition are copied, so later Inserts don't
// bleed into a taken snapshot.
func (inc *Incremental) State() *IncrementalState {
	// Sets orders sets by their union-find root — an artifact of union
	// order that differs between equivalent forests — so the partition
	// is re-sorted by first member (members are already sorted) to make
	// equal partitions encode identically.
	partition := inc.uf.Sets()
	sort.Slice(partition, func(i, j int) bool { return partition[i][0] < partition[j][0] })
	st := &IncrementalState{
		Sources:     inc.dataset.Sources(),
		Records:     inc.dataset.Records(),
		Postings:    make(map[string][]string, len(inc.index)),
		Partition:   partition,
		Comparisons: inc.comparisons,
		Tombstones:  make(map[string][]string, len(inc.dead)),
	}
	for k, ids := range inc.index {
		st.Postings[k] = append([]string(nil), ids...)
	}
	for id, keys := range inc.dead {
		st.Tombstones[id] = append([]string(nil), keys...)
	}
	return st
}

// FromState rebuilds a linker equivalent to the one State captured,
// under the given key function and matcher (function values can't be
// serialized; the caller re-supplies the configuration the state was
// built under — a different key or matcher silently changes future
// linkage decisions). MaxBlock is restored to the default; override it
// after construction if the original differed.
func FromState(st *IncrementalState, key func(r *data.Record) []string, m Matcher) (*Incremental, error) {
	inc := NewIncremental(key, m)
	for _, s := range st.Sources {
		if err := inc.dataset.AddSource(s); err != nil {
			return nil, fmt.Errorf("linkage: restore source: %w", err)
		}
	}
	for _, r := range st.Records {
		if err := inc.dataset.AddRecord(r); err != nil {
			return nil, fmt.Errorf("linkage: restore record: %w", err)
		}
		inc.uf.Add(r.ID)
		inc.n++
	}
	for k, ids := range st.Postings {
		inc.index[k] = append([]string(nil), ids...)
		inc.postRefs += len(ids)
	}
	for _, set := range st.Partition {
		for i := 1; i < len(set); i++ {
			inc.uf.Union(set[0], set[i])
		}
	}
	for id, keys := range st.Tombstones {
		inc.dead[id] = append([]string(nil), keys...)
		inc.deadRefs += len(keys)
	}
	inc.comparisons = st.Comparisons
	return inc, nil
}

func dedupeKeys(keys []string) []string {
	seen := map[string]bool{}
	out := keys[:0:0]
	for _, k := range keys {
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}
