package linkage

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// fsWorkload builds a generated dirty web plus all-pairs candidates
// restricted to shared-title-token pairs.
func fsWorkload(dirt int) (*data.Dataset, []data.Pair, []data.Pair) {
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: 31, NumEntities: 60, Categories: []string{"camera"},
	})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 32, NumSources: 12, DirtLevel: dirt, IdentifierRate: 0.0,
		Heterogeneity: 0.01, HeadFraction: 0.5, TailCoverage: 0.3,
		MinAccuracy: 0.8, MaxAccuracy: 0.95,
	})
	d := web.Dataset
	recs := d.Records()
	var cands []data.Pair
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if similarity.Jaccard(recs[i].Get("title").Str, recs[j].Get("title").Str) > 0.2 {
				cands = append(cands, data.NewPair(recs[i].ID, recs[j].ID))
			}
		}
	}
	var truth []data.Pair
	for _, p := range d.GroundTruthClusters().Pairs() {
		truth = append(truth, p)
	}
	return d, cands, truth
}

func fsComparator() *similarity.RecordComparator {
	return similarity.NewRecordComparator(
		similarity.FieldWeight{Attr: "title", Weight: 2, Metric: similarity.Jaccard},
		similarity.FieldWeight{Attr: "camera_brand", Weight: 1},
		similarity.FieldWeight{Attr: "camera_color", Weight: 1},
		similarity.FieldWeight{Attr: "camera_weight_g", Weight: 1},
		similarity.FieldWeight{Attr: "camera_price_usd", Weight: 1},
	)
}

func TestFellegiSunterTrainsAndSeparates(t *testing.T) {
	d, cands, _ := fsWorkload(1)
	fs := NewFellegiSunter(fsComparator())
	if err := fs.Train(d, cands, 15); err != nil {
		t.Fatal(err)
	}
	m, u, prior := fs.Params()
	if prior <= 0 || prior >= 1 {
		t.Fatalf("prior = %f", prior)
	}
	// The match class must agree more than the unmatch class overall.
	var mSum, uSum float64
	for i := range m {
		mSum += m[i]
		uSum += u[i]
	}
	if mSum <= uSum {
		t.Errorf("m=%v must dominate u=%v", m, u)
	}
	// Posterior separates a true duplicate pair from a non-duplicate.
	var dup, nondup *data.Record
	recs := d.Records()
	for i := 0; i < len(recs) && (dup == nil || nondup == nil); i++ {
		for j := i + 1; j < len(recs); j++ {
			if recs[i].EntityID == recs[j].EntityID && dup == nil {
				dup, nondup = recs[i], recs[j]
			}
		}
	}
	if dup == nil {
		t.Skip("no duplicate pair in sample")
	}
	other := recs[0]
	for _, r := range recs {
		if r.EntityID != dup.EntityID {
			other = r
			break
		}
	}
	pDup := fs.Posterior(dup, nondup)
	pNon := fs.Posterior(dup, other)
	if pDup <= pNon {
		t.Errorf("posterior(dup)=%f must exceed posterior(nondup)=%f", pDup, pNon)
	}
}

func TestFellegiSunterQualityDegradesGracefully(t *testing.T) {
	f1 := fsF1(t, 1)
	f3 := fsF1(t, 3)
	if f1 < 0.5 {
		t.Errorf("light-dirt F1 = %f, want >= 0.5", f1)
	}
	if f3 > f1+0.05 {
		t.Errorf("heavy dirt (%f) should not beat light dirt (%f)", f3, f1)
	}
}

func fsF1(t *testing.T, dirt int) float64 {
	t.Helper()
	d, cands, truth := fsWorkload(dirt)
	fs := NewFellegiSunter(fsComparator())
	fs.Threshold = 0.8
	fs.AgreeAt = 0.7
	if err := fs.Train(d, cands, 15); err != nil {
		t.Fatal(err)
	}
	matched := MatchPairs(d, cands, fs, 4)
	var pred []data.Pair
	for _, sp := range matched {
		pred = append(pred, sp.Pair)
	}
	ps := map[data.Pair]bool{}
	for _, p := range pred {
		ps[p] = true
	}
	ts := map[data.Pair]bool{}
	for _, p := range truth {
		ts[p] = true
	}
	tp := 0
	for p := range ps {
		if ts[p] {
			tp++
		}
	}
	if len(ps) == 0 || len(ts) == 0 {
		return 0
	}
	p := float64(tp) / float64(len(ps))
	r := float64(tp) / float64(len(ts))
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func TestFellegiSunterErrors(t *testing.T) {
	d := data.NewDataset()
	fs := NewFellegiSunter(similarity.NewRecordComparator())
	if err := fs.Train(d, []data.Pair{data.NewPair("a", "b")}, 5); err == nil {
		t.Error("no fields must error")
	}
	fs2 := NewFellegiSunter(similarity.UniformComparator(nil, "title"))
	if err := fs2.Train(d, nil, 5); err == nil {
		t.Error("no candidates must error")
	}
	if err := fs2.Train(d, []data.Pair{data.NewPair("a", "b")}, 5); err == nil {
		t.Error("unknown records must error")
	}
}

func TestFellegiSunterUntrained(t *testing.T) {
	fs := NewFellegiSunter(similarity.UniformComparator(nil, "title"))
	a := data.NewRecord("a", "s").Set("title", data.String("x"))
	if p := fs.Posterior(a, a); p != 0 {
		t.Errorf("untrained posterior = %f, want 0", p)
	}
	if _, ok := fs.Match(a, a); ok {
		t.Error("untrained model must not match")
	}
}

func TestLogLikelihoodRatioDirection(t *testing.T) {
	d, cands, _ := fsWorkload(1)
	fs := NewFellegiSunter(fsComparator())
	if err := fs.Train(d, cands, 15); err != nil {
		t.Fatal(err)
	}
	recs := d.Records()
	var dupA, dupB, other *data.Record
	for i := 0; i < len(recs) && dupA == nil; i++ {
		for j := i + 1; j < len(recs); j++ {
			if recs[i].EntityID == recs[j].EntityID {
				dupA, dupB = recs[i], recs[j]
				break
			}
		}
	}
	for _, r := range recs {
		if dupA != nil && r.EntityID != dupA.EntityID {
			other = r
			break
		}
	}
	if dupA == nil || other == nil {
		t.Skip("sample lacks needed pairs")
	}
	if fs.LogLikelihoodRatio(dupA, dupB) <= fs.LogLikelihoodRatio(dupA, other) {
		t.Error("LLR must rank duplicate above non-duplicate")
	}
}
