package linkage

import (
	"sort"

	"repro/internal/data"
)

// CorrelationClustering approximates correlation clustering over the
// match graph with the classic randomised-pivot algorithm (Ailon et
// al.), derandomised here by pivoting in a deterministic order:
// repeatedly pick the unclustered node with the highest incident match
// weight, form a cluster from it and all unclustered neighbours whose
// edge score ≥ MinScore, and iterate. This optimises agreement with the
// pairwise evidence rather than transitively closing it.
type CorrelationClustering struct {
	// MinScore filters which edges count as positive evidence. Default
	// 0 (any provided edge is positive).
	MinScore float64
}

// Cluster implements Clusterer.
func (cc CorrelationClustering) Cluster(ids []string, edges []data.ScoredPair) data.Clustering {
	adj := map[string]map[string]float64{}
	weight := map[string]float64{}
	addEdge := func(a, b string, s float64) {
		if adj[a] == nil {
			adj[a] = map[string]float64{}
		}
		adj[a][b] = s
		weight[a] += s
	}
	for _, e := range edges {
		if e.Score < cc.MinScore {
			continue
		}
		addEdge(e.A, e.B, e.Score)
		addEdge(e.B, e.A, e.Score)
	}

	// Pivot order: heaviest node first, ties by ID for determinism.
	// Edges may mention nodes not in ids; include them too.
	inOrder := make(map[string]bool, len(ids))
	order := append([]string(nil), ids...)
	for _, id := range ids {
		inOrder[id] = true
	}
	for id := range adj {
		if !inOrder[id] {
			inOrder[id] = true
			order = append(order, id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weight[order[i]], weight[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	clustered := map[string]bool{}
	var out data.Clustering
	for _, pivot := range order {
		if clustered[pivot] {
			continue
		}
		cluster := data.Cluster{pivot}
		clustered[pivot] = true
		// Join unclustered neighbours, strongest first.
		type nb struct {
			id string
			s  float64
		}
		var nbs []nb
		for n, s := range adj[pivot] {
			if !clustered[n] {
				nbs = append(nbs, nb{n, s})
			}
		}
		sort.Slice(nbs, func(i, j int) bool {
			if nbs[i].s != nbs[j].s {
				return nbs[i].s > nbs[j].s
			}
			return nbs[i].id < nbs[j].id
		})
		for _, n := range nbs {
			cluster = append(cluster, n.id)
			clustered[n.id] = true
		}
		out = append(out, cluster)
	}
	return out.Normalize()
}
