// Package linkage implements the record-linkage stage of the pipeline:
// pairwise matchers (rule-based, weighted-similarity and Fellegi–Sunter
// probabilistic with EM training), clustering of the match graph
// (connected components, center, merge-center, correlation clustering)
// and incremental linkage for high-velocity streams.
package linkage

import "sort"

// UnionFind is a disjoint-set forest over string IDs with path
// compression and union by rank.
type UnionFind struct {
	parent map[string]string
	rank   map[string]int
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: map[string]string{}, rank: map[string]int{}}
}

// Add ensures id exists as a singleton set.
func (u *UnionFind) Add(id string) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
	}
}

// Find returns the representative of id's set, adding id if unseen.
func (u *UnionFind) Find(id string) string {
	u.Add(id)
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[id] != root { // path compression
		u.parent[id], id = root, u.parent[id]
	}
	return root
}

// Union merges the sets of a and b.
func (u *UnionFind) Union(a, b string) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b string) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current partition with members and sets sorted.
func (u *UnionFind) Sets() [][]string {
	groups := map[string][]string{}
	ids := make([]string, 0, len(u.parent))
	for id := range u.parent {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := u.Find(id)
		groups[r] = append(groups[r], id)
	}
	roots := make([]string, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := make([][]string, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// Len returns the number of elements tracked.
func (u *UnionFind) Len() int { return len(u.parent) }
