package linkage

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

func linkageSample() *data.Dataset {
	d := data.NewDataset()
	_ = d.AddSource(&data.Source{ID: "s1"})
	_ = d.AddSource(&data.Source{ID: "s2"})
	recs := []*data.Record{
		data.NewRecord("a", "s1").Set("title", data.String("acme rocket skate 300")).Set("pid", data.String("AR-300")),
		data.NewRecord("b", "s2").Set("title", data.String("acme rocket skate 300 deluxe")).Set("pid", data.String("AR-300")),
		data.NewRecord("c", "s1").Set("title", data.String("zenix photon blender")).Set("pid", data.String("ZP-9")),
		data.NewRecord("d", "s2").Set("title", data.String("acme rocket skate 500")).Set("pid", data.String("AR-500")),
	}
	for _, r := range recs {
		_ = d.AddRecord(r)
	}
	return d
}

func TestThresholdMatcher(t *testing.T) {
	d := linkageSample()
	m := ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.6,
	}
	if _, ok := m.Match(d.Record("a"), d.Record("b")); !ok {
		t.Error("near-duplicate titles must match at 0.6")
	}
	if _, ok := m.Match(d.Record("a"), d.Record("c")); ok {
		t.Error("unrelated titles must not match")
	}
}

func TestRuleMatcherIdentifierWins(t *testing.T) {
	d := linkageSample()
	m := RuleMatcher{Exact: []string{"pid"}}
	if s, ok := m.Match(d.Record("a"), d.Record("b")); !ok || s != 1 {
		t.Error("identifier equality must force a match with score 1")
	}
	if _, ok := m.Match(d.Record("a"), d.Record("d")); ok {
		t.Error("different identifiers with no comparator must not match")
	}
	// Identifier equality is checked on normalised keys but distinct
	// kinds never collide.
	x := data.NewRecord("x", "s1").Set("pid", data.Number(12))
	y := data.NewRecord("y", "s1").Set("pid", data.String("12"))
	if _, ok := m.Match(x, y); ok {
		t.Error("number 12 and string \"12\" must not be identifier-equal")
	}
}

func TestRuleMatcherFallsBackToComparator(t *testing.T) {
	d := linkageSample()
	m := RuleMatcher{
		Exact:      []string{"nonexistent"},
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.6,
	}
	if _, ok := m.Match(d.Record("a"), d.Record("b")); !ok {
		t.Error("comparator fallback must fire")
	}
}

func TestMatchPairsDeterministicAcrossWorkers(t *testing.T) {
	d := linkageSample()
	cands := []data.Pair{
		data.NewPair("a", "b"), data.NewPair("a", "c"),
		data.NewPair("a", "d"), data.NewPair("b", "d"), data.NewPair("c", "d"),
	}
	m := ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.3,
	}
	base := MatchPairs(d, cands, m, 1)
	for _, w := range []int{2, 4, 8} {
		got := MatchPairs(d, cands, m, w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d pairs vs %d", w, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result %d differs", w, i)
			}
		}
	}
}

func TestMatchPairsSkipsUnknownRecords(t *testing.T) {
	d := linkageSample()
	m := RuleMatcher{Exact: []string{"pid"}}
	out := MatchPairs(d, []data.Pair{data.NewPair("a", "ghost")}, m, 2)
	if len(out) != 0 {
		t.Errorf("unknown record must be skipped, got %v", out)
	}
}

// End-to-end sanity on generated data: identifier-based rule matching on
// a clean web recovers the ground-truth clustering almost perfectly.
func TestRuleMatcherOnGeneratedWeb(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 21, NumEntities: 40})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 22, NumSources: 10, DirtLevel: 1, IdentifierRate: 0.999,
	})
	d := web.Dataset
	var ids []string
	for _, r := range d.Records() {
		ids = append(ids, r.ID)
	}
	// Candidates: all pairs sharing a pid (identifier blocking).
	byPid := map[string][]string{}
	for _, r := range d.Records() {
		if v := r.Get("pid"); !v.IsNull() {
			byPid[v.Str] = append(byPid[v.Str], r.ID)
		}
	}
	var cands []data.Pair
	for _, members := range byPid {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				cands = append(cands, data.NewPair(members[i], members[j]))
			}
		}
	}
	matched := MatchPairs(d, cands, RuleMatcher{Exact: []string{"pid"}}, 4)
	clusters := ConnectedComponents{}.Cluster(ids, matched)
	truth := d.GroundTruthClusters()
	// Pairwise precision must be perfect (identifiers are unique);
	// recall high (identifier coverage ~1).
	pr := clusterPRF(clusters, truth)
	if pr.p < 0.999 {
		t.Errorf("identifier linkage precision = %f", pr.p)
	}
	if pr.r < 0.95 {
		t.Errorf("identifier linkage recall = %f", pr.r)
	}
}

type prf struct{ p, r float64 }

func clusterPRF(pred, truth data.Clustering) prf {
	ps := map[data.Pair]bool{}
	for _, p := range pred.Pairs() {
		ps[p] = true
	}
	ts := map[data.Pair]bool{}
	for _, p := range truth.Pairs() {
		ts[p] = true
	}
	tp := 0
	for p := range ps {
		if ts[p] {
			tp++
		}
	}
	out := prf{}
	if len(ps) > 0 {
		out.p = float64(tp) / float64(len(ps))
	}
	if len(ts) > 0 {
		out.r = float64(tp) / float64(len(ts))
	}
	return out
}

func TestMatchPairsEmptyCandidates(t *testing.T) {
	d := linkageSample()
	if got := MatchPairs(d, nil, RuleMatcher{Exact: []string{"pid"}}, 3); len(got) != 0 {
		t.Errorf("empty candidates = %v", got)
	}
}

func BenchmarkMatchPairs(b *testing.B) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 1, NumEntities: 100})
	web := datagen.BuildWeb(w, datagen.SourceConfig{Seed: 2, NumSources: 20, DirtLevel: 1})
	d := web.Dataset
	recs := d.Records()
	var cands []data.Pair
	for i := 0; i < len(recs) && i < 300; i++ {
		for j := i + 1; j < len(recs) && j < i+10; j++ {
			cands = append(cands, data.NewPair(recs[i].ID, recs[j].ID))
		}
	}
	m := ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPairs(d, cands, m, 4)
	}
	_ = fmt.Sprint(len(cands))
}
