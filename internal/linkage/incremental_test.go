package linkage

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/similarity"
)

func incMatcher() Matcher {
	return ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.6,
	}
}

func TestIncrementalLinksStreamingDuplicates(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	r1 := data.NewRecord("r1", "s").Set("title", data.String("acme rocket skate"))
	r2 := data.NewRecord("r2", "s").Set("title", data.String("zenix blender"))
	r3 := data.NewRecord("r3", "s").Set("title", data.String("acme rocket skate pro"))

	if m, err := inc.Insert(src, r1); err != nil || len(m) != 0 {
		t.Fatalf("first insert: %v %v", m, err)
	}
	if m, err := inc.Insert(src, r2); err != nil || len(m) != 0 {
		t.Fatalf("unrelated insert: %v %v", m, err)
	}
	m, err := inc.Insert(src, r3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0] != "r1" {
		t.Fatalf("r3 should match r1, got %v", m)
	}
	clusters := inc.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if inc.Len() != 3 {
		t.Errorf("Len = %d", inc.Len())
	}
	if inc.Comparisons() == 0 {
		t.Error("comparisons must be counted")
	}
}

func TestTitleTokenKeySorted(t *testing.T) {
	r := data.NewRecord("r", "s").
		Set("title", data.String("zulu yankee xray whiskey victor uniform"))
	keys := TitleTokenKey(r)
	if len(keys) != 6 {
		t.Fatalf("keys = %v, want 6 distinct tokens", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("TitleTokenKey must return sorted keys, got %v", keys)
	}
}

// TestIncrementalInsertMatchOrderDeterministic pins the probe order of
// Insert: 6 existing records each own one distinct title token, a new
// record carries all 6 tokens, and the Overlap metric scores every
// probe 1 (the 1-token set is fully contained), so `matched` lists all
// 6 — in key probe order. With TitleTokenKey iterating WordSet's map
// directly there are 6! = 720 possible orders, and 20 fresh runs catch
// a regression with probability ≈ 1.
func TestIncrementalInsertMatchOrderDeterministic(t *testing.T) {
	tokens := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	run := func() string {
		inc := NewIncremental(TitleTokenKey, ThresholdMatcher{
			Comparator: similarity.UniformComparator(similarity.Overlap, "title"),
			Threshold:  0.9,
		})
		src := &data.Source{ID: "s"}
		for i, tok := range tokens {
			r := data.NewRecord(fmt.Sprintf("r%d", i), "s").
				Set("title", data.String(tok))
			if _, err := inc.Insert(src, r); err != nil {
				t.Fatal(err)
			}
		}
		probe := data.NewRecord("probe", "s").
			Set("title", data.String(strings.Join(tokens, " ")))
		matched, err := inc.Insert(src, probe)
		if err != nil {
			t.Fatal(err)
		}
		if len(matched) != len(tokens) {
			t.Fatalf("probe matched %v, want all %d single-token records", matched, len(tokens))
		}
		return strings.Join(matched, ",")
	}
	want := run()
	for i := 1; i < 20; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d: match order %q differs from first run %q", i, got, want)
		}
	}
}

func TestIncrementalRejectsDuplicateID(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	r := data.NewRecord("r1", "s").Set("title", data.String("x y"))
	if _, err := inc.Insert(src, r); err != nil {
		t.Fatal(err)
	}
	r2 := data.NewRecord("r1", "s").Set("title", data.String("x z"))
	if _, err := inc.Insert(src, r2); err == nil {
		t.Error("duplicate record ID must error")
	}
}

func TestIncrementalCostStaysSublinear(t *testing.T) {
	// With distinct titles, per-insert comparisons must not grow with
	// corpus size (each record's tokens are unique).
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	for i := 0; i < 300; i++ {
		r := data.NewRecord(fmt.Sprintf("u%03d", i), "s").
			Set("title", data.String(fmt.Sprintf("unique%dword alpha%d", i, i)))
		if _, err := inc.Insert(src, r); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Comparisons() != 0 {
		t.Errorf("disjoint-token stream made %d comparisons, want 0", inc.Comparisons())
	}
}

func TestIncrementalMaxBlockCapsStopwordKeys(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	inc.MaxBlock = 10
	src := &data.Source{ID: "s"}
	// Every record shares the token "common": blocks explode unless
	// capped.
	for i := 0; i < 100; i++ {
		r := data.NewRecord(fmt.Sprintf("c%03d", i), "s").
			Set("title", data.String(fmt.Sprintf("common item%d", i)))
		if _, err := inc.Insert(src, r); err != nil {
			t.Fatal(err)
		}
	}
	// Per insert at most MaxBlock comparisons per key × 2 keys.
	if max := 100 * 2 * inc.MaxBlock; inc.Comparisons() > max {
		t.Errorf("comparisons = %d, exceeds cap %d", inc.Comparisons(), max)
	}
}

func TestIncrementalMatchesBatchOnCleanStream(t *testing.T) {
	// Stream two copies of each of 30 entities; incremental clustering
	// must equal the ground truth.
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	truth := data.Clustering{}
	for i := 0; i < 30; i++ {
		a := fmt.Sprintf("a%02d", i)
		b := fmt.Sprintf("b%02d", i)
		title := fmt.Sprintf("brand%02d product%02d series%02d", i, i, i)
		ra := data.NewRecord(a, "s").Set("title", data.String(title))
		rb := data.NewRecord(b, "s").Set("title", data.String(title+" extra"))
		if _, err := inc.Insert(src, ra); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Insert(src, rb); err != nil {
			t.Fatal(err)
		}
		truth = append(truth, data.Cluster{a, b})
	}
	got := inc.Clusters()
	gotPairs := map[data.Pair]bool{}
	for _, p := range got.Pairs() {
		gotPairs[p] = true
	}
	for _, p := range truth.Pairs() {
		if !gotPairs[p] {
			t.Errorf("missing true pair %v", p)
		}
	}
	if len(got.Pairs()) != len(truth.Pairs()) {
		t.Errorf("extra pairs: got %d, want %d", len(got.Pairs()), len(truth.Pairs()))
	}
}

// TestIncrementalStateRoundTrip pins the snapshot/restore contract: a
// linker restored from State behaves exactly like the original under
// further inserts — same clusters, same posting lists, same comparison
// count — which is what stream persistence relies on.
func TestIncrementalStateRoundTrip(t *testing.T) {
	mk := func(i int, title string) *data.Record {
		return data.NewRecord(fmt.Sprintf("r%d", i), "s").Set("title", data.String(title))
	}
	titles := []string{
		"acme rocket skate", "zenix blender pro", "acme rocket skate pro",
		"omega juicer", "zenix blender", "omega juicer deluxe",
		"acme rocket", "nova camera x100", "nova camera x100 kit",
	}
	src := &data.Source{ID: "s"}

	orig := NewIncremental(TitleTokenKey, incMatcher())
	half := len(titles) / 2
	for i, title := range titles[:half] {
		if _, err := orig.Insert(src, mk(i, title)); err != nil {
			t.Fatal(err)
		}
	}

	restored, err := FromState(orig.State(), TitleTokenKey, incMatcher())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() || restored.Comparisons() != orig.Comparisons() {
		t.Fatalf("restored len/comparisons %d/%d, want %d/%d",
			restored.Len(), restored.Comparisons(), orig.Len(), orig.Comparisons())
	}

	// Both linkers consume the rest of the stream; every observable must
	// stay in lockstep.
	for i, title := range titles[half:] {
		r1 := mk(half+i, title)
		r2 := mk(half+i, title)
		m1, err1 := orig.Insert(src, r1)
		m2, err2 := restored.Insert(src, r2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(m1) != fmt.Sprint(m2) {
			t.Fatalf("insert %d matched %v vs %v", half+i, m1, m2)
		}
	}
	c1, c2 := fmt.Sprint(orig.Clusters()), fmt.Sprint(restored.Clusters())
	if c1 != c2 {
		t.Fatalf("clusters diverged:\n%s\n%s", c1, c2)
	}
	if orig.Comparisons() != restored.Comparisons() {
		t.Errorf("comparisons %d vs %d", orig.Comparisons(), restored.Comparisons())
	}

	// State is a snapshot: inserts after State must not leak into it.
	st := orig.State()
	n := len(st.Records)
	if _, err := orig.Insert(src, mk(99, "fresh widget")); err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != n {
		t.Error("State must not alias the live record list")
	}
}
