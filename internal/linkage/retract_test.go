package linkage

import (
	"fmt"
	"testing"

	"repro/internal/data"
)

func retractRecord(id, title string) *data.Record {
	return data.NewRecord(id, "s").Set("title", data.String(title))
}

func TestIncrementalDeleteNeverInserted(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	if _, err := inc.Insert(src, retractRecord("r1", "acme rocket skate")); err != nil {
		t.Fatal(err)
	}
	if inc.Delete("ghost") {
		t.Error("deleting a never-inserted ID must report false")
	}
	if inc.Len() != 1 || inc.Tombstones() != 0 {
		t.Errorf("no-op delete mutated state: len=%d tombstones=%d", inc.Len(), inc.Tombstones())
	}
	// The linker keeps working after the no-op.
	if m, err := inc.Insert(src, retractRecord("r2", "acme rocket skate pro")); err != nil || len(m) != 1 {
		t.Fatalf("insert after no-op delete: %v %v", m, err)
	}
}

func TestIncrementalDeleteSameIDTwice(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	for i, title := range []string{"acme rocket skate", "acme rocket skate pro"} {
		if _, err := inc.Insert(src, retractRecord(fmt.Sprintf("r%d", i), title)); err != nil {
			t.Fatal(err)
		}
	}
	if !inc.Delete("r0") {
		t.Fatal("first delete must succeed")
	}
	if inc.Delete("r0") {
		t.Error("second delete of the same ID must be a no-op")
	}
	if inc.Len() != 1 || inc.Tombstones() != 1 {
		t.Errorf("after duplicate delete: len=%d tombstones=%d, want 1/1", inc.Len(), inc.Tombstones())
	}
	clusters := inc.Clusters()
	if len(clusters) != 1 || len(clusters[0]) != 1 || clusters[0][0] != "r1" {
		t.Errorf("clusters after delete = %v, want [[r1]]", clusters)
	}
}

func TestIncrementalDeleteLastMemberOfCluster(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	if _, err := inc.Insert(src, retractRecord("solo", "unique widget xj9")); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert(src, retractRecord("other", "different thing entirely")); err != nil {
		t.Fatal(err)
	}
	if !inc.Delete("solo") {
		t.Fatal("delete failed")
	}
	for _, cl := range inc.Clusters() {
		for _, id := range cl {
			if id == "solo" {
				t.Fatalf("deleted singleton still present in partition: %v", inc.Clusters())
			}
		}
	}
	if got := len(inc.Clusters()); got != 1 {
		t.Errorf("clusters = %d, want 1", got)
	}
}

// TestIncrementalDeleteSplitsTransitiveCluster pins the recluster
// contract: a and c were joined only through bridge b, so retracting b
// must split them apart again.
func TestIncrementalDeleteSplitsTransitiveCluster(t *testing.T) {
	inc := NewIncremental(TitleTokenKey, incMatcher())
	src := &data.Source{ID: "s"}
	// a ~ b (share 3/4 tokens), b ~ c (share 3/4), a vs c share 2/4 —
	// below the 0.6 Jaccard threshold.
	for _, rc := range []struct{ id, title string }{
		{"a", "acme rocket skate turbo"},
		{"b", "acme rocket skate deluxe"},
		{"c", "acme rocket deluxe primo"},
	} {
		if _, err := inc.Insert(src, retractRecord(rc.id, rc.title)); err != nil {
			t.Fatal(err)
		}
	}
	if !inc.uf.Same("a", "c") {
		t.Fatal("setup: a and c should be transitively linked through b")
	}
	if !inc.Delete("b") {
		t.Fatal("delete failed")
	}
	if inc.uf.Same("a", "c") {
		t.Errorf("a and c still clustered after their bridge was deleted: %v", inc.Clusters())
	}
}

// TestIncrementalDeleteThenReinsertEqualsInsertOnly pins that a
// delete + reinsert of the same record converges to the insert-only
// partition: the revived record re-earns exactly its old links and the
// stale posting slots from its first life never distort probing.
func TestIncrementalDeleteThenReinsertEqualsInsertOnly(t *testing.T) {
	titles := []struct{ id, title string }{
		{"r0", "acme rocket skate"},
		{"r1", "zenix blender pro"},
		{"r2", "acme rocket skate pro"},
		{"r3", "omega juicer deluxe"},
		{"r4", "zenix blender"},
	}
	src := &data.Source{ID: "s"}
	build := func() *Incremental {
		inc := NewIncremental(TitleTokenKey, incMatcher())
		for _, rc := range titles {
			if _, err := inc.Insert(src, retractRecord(rc.id, rc.title)); err != nil {
				t.Fatal(err)
			}
		}
		return inc
	}

	insertOnly := build()
	churned := build()
	for _, victim := range []string{"r2", "r4"} {
		if !churned.Delete(victim) {
			t.Fatalf("delete %s failed", victim)
		}
	}
	for _, rc := range titles {
		if rc.id == "r2" || rc.id == "r4" {
			if _, err := churned.Insert(src, retractRecord(rc.id, rc.title)); err != nil {
				t.Fatal(err)
			}
		}
	}

	want := fmt.Sprint(insertOnly.Clusters())
	got := fmt.Sprint(churned.Clusters())
	if got != want {
		t.Errorf("delete-then-reinsert partition %s differs from insert-only %s", got, want)
	}
	if churned.Tombstones() != 0 {
		t.Errorf("reinsert left %d tombstones, want 0 (stale slots must be exhumed)", churned.Tombstones())
	}
	if churned.Len() != insertOnly.Len() {
		t.Errorf("len %d vs %d", churned.Len(), insertOnly.Len())
	}
}

// TestIncrementalCompactPreservesBehaviour pins compaction neutrality:
// a compacted and an uncompacted linker with identical histories make
// identical decisions on every subsequent operation.
func TestIncrementalCompactPreservesBehaviour(t *testing.T) {
	src := &data.Source{ID: "s"}
	seedOps := func(inc *Incremental) {
		for i := 0; i < 20; i++ {
			r := retractRecord(fmt.Sprintf("r%02d", i), fmt.Sprintf("brand%d gadget model%d common", i%5, i))
			if _, err := inc.Insert(src, r); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range []string{"r03", "r07", "r11"} {
			if !inc.Delete(id) {
				t.Fatalf("delete %s failed", id)
			}
		}
	}
	plain := NewIncremental(TitleTokenKey, incMatcher())
	compacted := NewIncremental(TitleTokenKey, incMatcher())
	seedOps(plain)
	seedOps(compacted)

	slots, _, tombs := compacted.Compact()
	if slots == 0 || tombs != 3 {
		t.Fatalf("compact reclaimed %d slots / %d tombstones, want >0 / 3", slots, tombs)
	}
	if compacted.GarbageRatio() != 0 {
		t.Errorf("garbage ratio after compact = %v, want 0", compacted.GarbageRatio())
	}
	if again, _, _ := compacted.Compact(); again != 0 {
		t.Errorf("second compact reclaimed %d slots, want 0", again)
	}

	// Both linkers consume the same follow-up stream, including a revive
	// of a deleted ID; every observable must stay in lockstep.
	follow := []struct{ id, title string }{
		{"r03", "brand3 gadget model3 common"}, // revive
		{"r20", "brand0 gadget model0 common"},
		{"r21", "fresh unrelated item"},
	}
	for _, rc := range follow {
		m1, err1 := plain.Insert(src, retractRecord(rc.id, rc.title))
		m2, err2 := compacted.Insert(src, retractRecord(rc.id, rc.title))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(m1) != fmt.Sprint(m2) {
			t.Fatalf("insert %s matched %v (plain) vs %v (compacted)", rc.id, m1, m2)
		}
	}
	if a, b := fmt.Sprint(plain.Clusters()), fmt.Sprint(compacted.Clusters()); a != b {
		t.Errorf("clusters diverged after compaction:\n%s\n%s", a, b)
	}
	if plain.Comparisons() != compacted.Comparisons() {
		t.Errorf("comparisons %d vs %d", plain.Comparisons(), compacted.Comparisons())
	}
}

// TestIncrementalStateRoundTripWithTombstones extends the PR 9
// round-trip contract to deleted state: tombstones survive State /
// FromState and a restored linker keeps behaving identically, including
// through a post-restore compaction.
func TestIncrementalStateRoundTripWithTombstones(t *testing.T) {
	src := &data.Source{ID: "s"}
	orig := NewIncremental(TitleTokenKey, incMatcher())
	for i := 0; i < 10; i++ {
		r := retractRecord(fmt.Sprintf("r%d", i), fmt.Sprintf("widget mk%d shared", i))
		if _, err := orig.Insert(src, r); err != nil {
			t.Fatal(err)
		}
	}
	orig.Delete("r4")
	orig.Delete("r8")

	restored, err := FromState(orig.State(), TitleTokenKey, incMatcher())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tombstones() != orig.Tombstones() {
		t.Fatalf("restored tombstones %d, want %d", restored.Tombstones(), orig.Tombstones())
	}
	if restored.GarbageRatio() != orig.GarbageRatio() {
		t.Fatalf("restored garbage ratio %v, want %v", restored.GarbageRatio(), orig.GarbageRatio())
	}
	for i, inc := range []*Incremental{orig, restored} {
		m, err := inc.Insert(src, retractRecord("probe", "widget mk1 shared"))
		if err != nil {
			t.Fatalf("linker %d: %v", i, err)
		}
		for _, id := range m {
			if id == "r4" || id == "r8" {
				t.Fatalf("linker %d matched tombstoned record %s", i, id)
			}
		}
	}
	if a, b := fmt.Sprint(orig.Clusters()), fmt.Sprint(restored.Clusters()); a != b {
		t.Errorf("clusters diverged:\n%s\n%s", a, b)
	}
	if orig.Comparisons() != restored.Comparisons() {
		t.Errorf("comparisons %d vs %d", orig.Comparisons(), restored.Comparisons())
	}

	slots1, _, _ := orig.Compact()
	slots2, _, _ := restored.Compact()
	if slots1 != slots2 {
		t.Errorf("compact reclaimed %d vs %d slots", slots1, slots2)
	}
	if a, b := fmt.Sprint(orig.Clusters()), fmt.Sprint(restored.Clusters()); a != b {
		t.Errorf("clusters diverged after compaction:\n%s\n%s", a, b)
	}
}
