package linkage

import (
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
	"repro/internal/similarity"
)

// Matcher decides whether a candidate record pair refers to the same
// entity, returning a score in [0,1] and the boolean decision.
type Matcher interface {
	Match(a, b *data.Record) (score float64, match bool)
}

// ThresholdMatcher wraps a RecordComparator with a decision threshold —
// the simple rule-based matcher.
type ThresholdMatcher struct {
	Comparator *similarity.RecordComparator
	Threshold  float64
}

// Match implements Matcher.
func (m ThresholdMatcher) Match(a, b *data.Record) (float64, bool) {
	s := m.Comparator.Compare(a, b)
	return s, s >= m.Threshold
}

// RuleMatcher matches when a hard rule fires: any of the Exact
// attributes agree exactly on non-null normalised values (identifier
// equality), or the weighted comparator exceeds the threshold. It
// mirrors the tutorial's product-domain observation that identifier
// equality is the strongest linkage signal.
type RuleMatcher struct {
	Exact      []string // attributes whose exact equality implies a match
	Comparator *similarity.RecordComparator
	Threshold  float64
}

// Match implements Matcher.
func (m RuleMatcher) Match(a, b *data.Record) (float64, bool) {
	for _, attr := range m.Exact {
		va, vb := a.Get(attr), b.Get(attr)
		if !va.IsNull() && !vb.IsNull() && va.Key() == vb.Key() {
			return 1, true
		}
	}
	if m.Comparator == nil {
		return 0, false
	}
	s := m.Comparator.Compare(a, b)
	return s, s >= m.Threshold
}

// MatchPairs scores every candidate pair with the matcher, in parallel,
// and returns the matching pairs with scores, sorted by descending
// score then pair order (deterministic regardless of worker count).
func MatchPairs(d *data.Dataset, candidates []data.Pair, m Matcher, workers int) []data.ScoredPair {
	results := make([]data.ScoredPair, len(candidates))
	ok := make([]bool, len(candidates))
	parallel.ForEach(parallel.Config{Workers: workers}, len(candidates), func(i int) {
		p := candidates[i]
		a, b := d.Record(p.A), d.Record(p.B)
		if a == nil || b == nil {
			return
		}
		s, match := m.Match(a, b)
		if match {
			results[i] = data.ScoredPair{Pair: p, Score: s}
			ok[i] = true
		}
	})
	out := make([]data.ScoredPair, 0, len(candidates))
	for i, keep := range ok {
		if keep {
			out = append(out, results[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
