package linkage

import (
	"context"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/similarity"
)

// Matcher decides whether a candidate record pair refers to the same
// entity, returning a score in [0,1] and the boolean decision.
type Matcher interface {
	Match(a, b *data.Record) (score float64, match bool)
}

// IndexPreparer is implemented by matchers that can precompute
// per-record comparison features (a similarity.FeatureIndex) before a
// batch of pair evaluations. MatchPairs calls it once per batch so
// every record is tokenized exactly once instead of once per candidate
// pair.
type IndexPreparer interface {
	PrepareIndex(d *data.Dataset, candidates []data.Pair)
}

// IDIndexPreparer is the streaming-friendly variant of IndexPreparer:
// the matcher precomputes per-record features from record IDs alone,
// so a packed candidate source never has to materialise pair slices
// just to warm the cache.
type IDIndexPreparer interface {
	PrepareIndexIDs(d *data.Dataset, ids []string)
}

// PairSource is a random-access, deduplicated candidate collection —
// the streaming alternative to a materialised []data.Pair. The
// blocking engine's CandidateSet implements it with packed uint64
// codes, so large candidate sets reach the matcher without a pair
// slice ever existing.
type PairSource interface {
	// Len returns the number of candidate pairs.
	Len() int
	// Pair decodes the i-th candidate.
	Pair(i int) data.Pair
	// RecordIDs returns the distinct record IDs the candidates
	// reference (a superset is permitted).
	RecordIDs() []string
}

// PrepareComparatorIndex builds a feature index over the records
// referenced by candidates and attaches it to the comparator. It is a
// no-op when the comparator is nil or its attached index already covers
// every candidate record (so repeated batches over a stable corpus
// reuse the cache). Not safe to call concurrently with matching.
func PrepareComparatorIndex(c *similarity.RecordComparator, d *data.Dataset, candidates []data.Pair) {
	if c == nil || len(c.Fields()) == 0 || len(candidates) == 0 {
		return
	}
	if idx := c.Index(); idx != nil {
		covered := true
		for _, p := range candidates {
			if !idx.Has(p.A) || !idx.Has(p.B) {
				covered = false
				break
			}
		}
		if covered {
			return
		}
	}
	seen := make(map[string]bool, 2*len(candidates))
	recs := make([]*data.Record, 0, 2*len(candidates))
	add := func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		if r := d.Record(id); r != nil {
			recs = append(recs, r)
		}
	}
	for _, p := range candidates {
		add(p.A)
		add(p.B)
	}
	c.AttachIndex(similarity.BuildFeatureIndex(recs, c))
}

// PrepareComparatorIndexIDs is PrepareComparatorIndex for a known
// record-ID set (the streaming path): no candidate pairs are needed to
// decide what to index. IDs must be distinct; an attached index that
// already covers them is kept.
func PrepareComparatorIndexIDs(c *similarity.RecordComparator, d *data.Dataset, ids []string) {
	if c == nil || len(c.Fields()) == 0 || len(ids) == 0 {
		return
	}
	if idx := c.Index(); idx != nil {
		covered := true
		for _, id := range ids {
			if !idx.Has(id) {
				covered = false
				break
			}
		}
		if covered {
			return
		}
	}
	recs := make([]*data.Record, 0, len(ids))
	for _, id := range ids {
		if r := d.Record(id); r != nil {
			recs = append(recs, r)
		}
	}
	c.AttachIndex(similarity.BuildFeatureIndex(recs, c))
}

// NoIndex hides a matcher's IndexPreparer implementation so MatchPairs
// evaluates it without building the per-record feature cache — the
// uncached baseline for benchmarks and ablations.
func NoIndex(m Matcher) Matcher { return noIndexMatcher{m: m} }

type noIndexMatcher struct{ m Matcher }

func (n noIndexMatcher) Match(a, b *data.Record) (float64, bool) { return n.m.Match(a, b) }

// ThresholdMatcher wraps a RecordComparator with a decision threshold —
// the simple rule-based matcher.
type ThresholdMatcher struct {
	Comparator *similarity.RecordComparator
	Threshold  float64
}

// Match implements Matcher.
func (m ThresholdMatcher) Match(a, b *data.Record) (float64, bool) {
	s := m.Comparator.Compare(a, b)
	return s, s >= m.Threshold
}

// PrepareIndex implements IndexPreparer.
func (m ThresholdMatcher) PrepareIndex(d *data.Dataset, candidates []data.Pair) {
	PrepareComparatorIndex(m.Comparator, d, candidates)
}

// PrepareIndexIDs implements IDIndexPreparer.
func (m ThresholdMatcher) PrepareIndexIDs(d *data.Dataset, ids []string) {
	PrepareComparatorIndexIDs(m.Comparator, d, ids)
}

// RuleMatcher matches when a hard rule fires: any of the Exact
// attributes agree exactly on non-null normalised values (identifier
// equality), or the weighted comparator exceeds the threshold. It
// mirrors the tutorial's product-domain observation that identifier
// equality is the strongest linkage signal.
type RuleMatcher struct {
	Exact      []string // attributes whose exact equality implies a match
	Comparator *similarity.RecordComparator
	Threshold  float64
}

// Match implements Matcher.
func (m RuleMatcher) Match(a, b *data.Record) (float64, bool) {
	for _, attr := range m.Exact {
		va, vb := a.Get(attr), b.Get(attr)
		if !va.IsNull() && !vb.IsNull() && va.Key() == vb.Key() {
			return 1, true
		}
	}
	if m.Comparator == nil {
		return 0, false
	}
	s := m.Comparator.Compare(a, b)
	return s, s >= m.Threshold
}

// PrepareIndex implements IndexPreparer.
func (m RuleMatcher) PrepareIndex(d *data.Dataset, candidates []data.Pair) {
	PrepareComparatorIndex(m.Comparator, d, candidates)
}

// PrepareIndexIDs implements IDIndexPreparer.
func (m RuleMatcher) PrepareIndexIDs(d *data.Dataset, ids []string) {
	PrepareComparatorIndexIDs(m.Comparator, d, ids)
}

// MatchPairs scores every candidate pair with the matcher, in parallel,
// and returns the matching pairs with scores, sorted by descending
// score then pair order (deterministic regardless of worker count).
// Matchers implementing IndexPreparer get one PrepareIndex call before
// the parallel phase, so per-record features are computed once per
// batch instead of once per pair; wrap the matcher in NoIndex to opt
// out.
func MatchPairs(d *data.Dataset, candidates []data.Pair, m Matcher, workers int) []data.ScoredPair {
	return MatchPairsObs(d, candidates, m, workers, nil)
}

// MatchPairsObs is MatchPairs with an attached metrics registry
// recording "matching.comparisons" and "matching.matched". A nil
// registry disables recording at no cost.
func MatchPairsObs(d *data.Dataset, candidates []data.Pair, m Matcher, workers int, reg *obs.Registry) []data.ScoredPair {
	return parallel.Must(MatchPairsCtx(nil, d, candidates, m, workers, reg))
}

// MatchPairsCtx is MatchPairsObs bound to a context: the parallel
// scoring pass observes ctx at chunk boundaries and a cancellation (or
// a recovered matcher panic) is returned as an error instead of
// crashing or running to completion. A nil ctx never cancels.
func MatchPairsCtx(ctx context.Context, d *data.Dataset, candidates []data.Pair, m Matcher, workers int, reg *obs.Registry) ([]data.ScoredPair, error) {
	if ip, ok := m.(IndexPreparer); ok {
		ip.PrepareIndex(d, candidates)
	}
	return matchAt(ctx, d, len(candidates), func(i int) data.Pair { return candidates[i] }, m, workers, reg)
}

// MatchPairsFrom is MatchPairs over a packed candidate source: pairs
// are decoded on the fly inside the workers, so no []data.Pair is ever
// materialised. Matchers implementing IDIndexPreparer warm their
// feature cache from the source's record IDs; legacy IndexPreparer
// matchers fall back to a one-off pair materialisation. Output is
// identical to MatchPairs over src's pairs.
func MatchPairsFrom(d *data.Dataset, src PairSource, m Matcher, workers int) []data.ScoredPair {
	return MatchPairsFromObs(d, src, m, workers, nil)
}

// MatchPairsFromObs is MatchPairsFrom with an attached metrics registry
// (see MatchPairsObs).
func MatchPairsFromObs(d *data.Dataset, src PairSource, m Matcher, workers int, reg *obs.Registry) []data.ScoredPair {
	return parallel.Must(MatchPairsFromCtx(nil, d, src, m, workers, reg))
}

// MatchPairsFromCtx is MatchPairsFromObs bound to a context (see
// MatchPairsCtx). A nil ctx never cancels.
func MatchPairsFromCtx(ctx context.Context, d *data.Dataset, src PairSource, m Matcher, workers int, reg *obs.Registry) ([]data.ScoredPair, error) {
	switch ip := m.(type) {
	case IDIndexPreparer:
		ip.PrepareIndexIDs(d, src.RecordIDs())
	case IndexPreparer:
		pairs := make([]data.Pair, src.Len())
		for i := range pairs {
			pairs[i] = src.Pair(i)
		}
		ip.PrepareIndex(d, pairs)
	}
	return matchAt(ctx, d, src.Len(), src.Pair, m, workers, reg)
}

// PairStream is the emission-order streaming form of PairSource: a
// deduplicated candidate collection that may live on disk (the
// blocking engine's spilled CandidateSet) and therefore offers no
// random access. The engine's in-memory CandidateSet implements both.
type PairStream interface {
	// Len returns the number of candidate pairs.
	Len() int
	// EmitPairs streams the candidates in emission order, stopping
	// early when emit returns false.
	EmitPairs(emit func(data.Pair) bool)
	// RecordIDs returns the distinct record IDs the candidates
	// reference (a superset is permitted).
	RecordIDs() []string
}

// matchBatch is the streaming matcher's scoring-window size: pairs in
// flight are bounded by it, so a spilled candidate stream reaches the
// matcher without ever existing as a slice.
const matchBatch = 1 << 16

// MatchStreamCtx scores a streamed candidate source in bounded
// batches: at most matchBatch decoded pairs exist at once, each batch
// runs through the parallel scoring pass, and one final sort yields
// output identical to MatchPairsFromCtx over the same candidates (the
// ordering is total, so batching cannot reorder it). This is the
// matching entry point for spill-backed candidate sets.
//
// Matchers implementing IDIndexPreparer warm their feature cache from
// the stream's record IDs — the same global index the random-access
// path builds, so scores are identical. A legacy IndexPreparer matcher
// forces a one-off materialisation of the stream, surrendering the
// memory bound but never correctness.
func MatchStreamCtx(ctx context.Context, d *data.Dataset, src PairStream, m Matcher, workers int, reg *obs.Registry) ([]data.ScoredPair, error) {
	switch ip := m.(type) {
	case IDIndexPreparer:
		ip.PrepareIndexIDs(d, src.RecordIDs())
	case IndexPreparer:
		pairs := make([]data.Pair, 0, src.Len())
		src.EmitPairs(func(p data.Pair) bool {
			pairs = append(pairs, p)
			return true
		})
		ip.PrepareIndex(d, pairs)
	}
	reg = obs.OrDefault(reg)
	n := src.Len()
	reg.Counter("matching.comparisons").Add(int64(n))
	var out []data.ScoredPair
	var err error
	batch := make([]data.Pair, 0, min(max(n, 1), matchBatch))
	flush := func() bool {
		if len(batch) == 0 || err != nil {
			return err == nil
		}
		results := make([]data.ScoredPair, len(batch))
		ok := make([]bool, len(batch))
		err = parallel.ForEach(parallel.Config{Workers: workers, Obs: reg, Ctx: ctx}, len(batch), func(i int) {
			p := batch[i]
			a, b := d.Record(p.A), d.Record(p.B)
			if a == nil || b == nil {
				return
			}
			s, match := m.Match(a, b)
			if match {
				results[i] = data.ScoredPair{Pair: p, Score: s}
				ok[i] = true
			}
		})
		if err != nil {
			return false
		}
		for i, keep := range ok {
			if keep {
				out = append(out, results[i])
			}
		}
		batch = batch[:0]
		return true
	}
	src.EmitPairs(func(p data.Pair) bool {
		batch = append(batch, p)
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	})
	flush()
	if err != nil {
		return nil, err
	}
	reg.Counter("matching.matched").Add(int64(len(out)))
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// matchAt scores n candidates supplied by at, in parallel, returning
// accepted pairs sorted by descending score then pair order. Counters
// are bumped once per batch, never per pair.
func matchAt(ctx context.Context, d *data.Dataset, n int, at func(int) data.Pair, m Matcher, workers int, reg *obs.Registry) ([]data.ScoredPair, error) {
	reg = obs.OrDefault(reg)
	reg.Counter("matching.comparisons").Add(int64(n))
	results := make([]data.ScoredPair, n)
	ok := make([]bool, n)
	if err := parallel.ForEach(parallel.Config{Workers: workers, Obs: reg, Ctx: ctx}, n, func(i int) {
		p := at(i)
		a, b := d.Record(p.A), d.Record(p.B)
		if a == nil || b == nil {
			return
		}
		s, match := m.Match(a, b)
		if match {
			results[i] = data.ScoredPair{Pair: p, Score: s}
			ok[i] = true
		}
	}); err != nil {
		return nil, err
	}
	out := make([]data.ScoredPair, 0, n)
	for i, keep := range ok {
		if keep {
			out = append(out, results[i])
		}
	}
	reg.Counter("matching.matched").Add(int64(len(out)))
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}
