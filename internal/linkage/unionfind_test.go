package linkage

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind()
	uf.Union("a", "b")
	uf.Union("c", "d")
	if !uf.Same("a", "b") || !uf.Same("c", "d") {
		t.Fatal("direct unions lost")
	}
	if uf.Same("a", "c") {
		t.Fatal("distinct sets merged")
	}
	uf.Union("b", "c")
	if !uf.Same("a", "d") {
		t.Fatal("transitive union lost")
	}
	if uf.Len() != 4 {
		t.Errorf("Len = %d", uf.Len())
	}
}

func TestUnionFindSets(t *testing.T) {
	uf := NewUnionFind()
	uf.Union("x", "y")
	uf.Add("z")
	sets := uf.Sets()
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if len(sets[0]) != 2 || sets[0][0] != "x" || sets[0][1] != "y" {
		t.Errorf("first set = %v", sets[0])
	}
	if len(sets[1]) != 1 || sets[1][0] != "z" {
		t.Errorf("second set = %v", sets[1])
	}
}

func TestUnionFindIdempotentUnion(t *testing.T) {
	uf := NewUnionFind()
	uf.Union("a", "b")
	uf.Union("a", "b")
	uf.Union("b", "a")
	if got := len(uf.Sets()); got != 1 {
		t.Errorf("sets = %d, want 1", got)
	}
}

func TestUnionFindEquivalenceProperties(t *testing.T) {
	// Property: after a random union sequence, Same is an equivalence
	// relation consistent with Sets().
	f := func(ops []uint16) bool {
		uf := NewUnionFind()
		n := 12
		for _, op := range ops {
			a := fmt.Sprintf("n%d", int(op)%n)
			b := fmt.Sprintf("n%d", int(op>>4)%n)
			uf.Union(a, b)
		}
		sets := uf.Sets()
		// Every pair within a set must be Same; across sets must not.
		for i, s1 := range sets {
			for _, a := range s1 {
				for _, b := range s1 {
					if !uf.Same(a, b) {
						return false
					}
				}
				for j, s2 := range sets {
					if i == j {
						continue
					}
					for _, b := range s2 {
						if uf.Same(a, b) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
