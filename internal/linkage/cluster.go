package linkage

import (
	"sort"

	"repro/internal/data"
)

// Clusterer turns scored match edges over a record universe into a
// clustering (one cluster per believed entity). Records not appearing
// in any edge become singletons.
type Clusterer interface {
	Cluster(ids []string, edges []data.ScoredPair) data.Clustering
}

// ConnectedComponents clusters by transitive closure of match edges —
// maximal recall, precision suffers in dense noisy graphs (one bad edge
// glues two entities together).
type ConnectedComponents struct{}

// Cluster implements Clusterer.
func (ConnectedComponents) Cluster(ids []string, edges []data.ScoredPair) data.Clustering {
	uf := NewUnionFind()
	for _, id := range ids {
		uf.Add(id)
	}
	for _, e := range edges {
		uf.Union(e.A, e.B)
	}
	var out data.Clustering
	for _, set := range uf.Sets() {
		out = append(out, set)
	}
	return out.Normalize()
}

// Center clustering (Haveliwala et al.): process edges in descending
// score order; the first time a node appears it becomes a cluster
// center or joins the center it is connected to. Each node commits to
// exactly one cluster, so a single bad edge can no longer merge two
// entities.
type Center struct{}

// Cluster implements Clusterer.
func (Center) Cluster(ids []string, edges []data.ScoredPair) data.Clustering {
	sorted := sortEdges(edges)
	role := map[string]string{} // node → its center ("" = is itself a center)
	assigned := map[string]bool{}
	for _, e := range sorted {
		aAss, bAss := assigned[e.A], assigned[e.B]
		switch {
		case !aAss && !bAss:
			// A becomes center, B joins it.
			assigned[e.A], assigned[e.B] = true, true
			role[e.A] = ""
			role[e.B] = e.A
		case aAss && !bAss:
			if role[e.A] == "" { // A is a center: B joins
				assigned[e.B] = true
				role[e.B] = e.A
			}
			// A is a satellite: B stays unassigned for a later edge.
		case !aAss && bAss:
			if role[e.B] == "" {
				assigned[e.A] = true
				role[e.A] = e.B
			}
		}
	}
	return buildFromRoles(ids, role, assigned)
}

// MergeCenter is center clustering that additionally merges two centers
// when an edge directly connects them, trading some precision back for
// recall (the merge-center variant).
type MergeCenter struct{}

// Cluster implements Clusterer.
func (MergeCenter) Cluster(ids []string, edges []data.ScoredPair) data.Clustering {
	sorted := sortEdges(edges)
	role := map[string]string{}
	assigned := map[string]bool{}
	uf := NewUnionFind() // merges between centers
	for _, e := range sorted {
		aAss, bAss := assigned[e.A], assigned[e.B]
		switch {
		case !aAss && !bAss:
			assigned[e.A], assigned[e.B] = true, true
			role[e.A] = ""
			role[e.B] = e.A
			uf.Add(e.A)
		case aAss && !bAss:
			if role[e.A] == "" {
				assigned[e.B] = true
				role[e.B] = e.A
			}
		case !aAss && bAss:
			if role[e.B] == "" {
				assigned[e.A] = true
				role[e.A] = e.B
			}
		default:
			// Both assigned: merge their centers if directly linked.
			ca, cb := centerOf(role, e.A), centerOf(role, e.B)
			if ca != cb {
				uf.Union(ca, cb)
			}
		}
	}
	// Rewrite roles through the center merges.
	merged := map[string]string{}
	for id, c := range role {
		center := id
		if c != "" {
			center = c
		}
		merged[id] = uf.Find(center)
	}
	rolesAsCenters := map[string]string{}
	for id, c := range merged {
		if id == c {
			rolesAsCenters[id] = ""
		} else {
			rolesAsCenters[id] = c
		}
	}
	return buildFromRoles(ids, rolesAsCenters, assigned)
}

func centerOf(role map[string]string, id string) string {
	if c := role[id]; c != "" {
		return c
	}
	return id
}

func sortEdges(edges []data.ScoredPair) []data.ScoredPair {
	sorted := append([]data.ScoredPair(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	return sorted
}

func buildFromRoles(ids []string, role map[string]string, assigned map[string]bool) data.Clustering {
	groups := map[string][]string{}
	for id, center := range role {
		c := id
		if center != "" {
			c = center
		}
		groups[c] = append(groups[c], id)
	}
	var out data.Clustering
	for _, members := range groups {
		out = append(out, members)
	}
	for _, id := range ids {
		if !assigned[id] {
			if _, isCenter := role[id]; !isCenter {
				out = append(out, data.Cluster{id})
			}
		}
	}
	return out.Normalize()
}
