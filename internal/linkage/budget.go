package linkage

// Budgeted progressive matching: the pay-as-you-go consumption side of
// a ranked candidate stream. The scarce resource at web scale is
// comparisons, not candidate pairs — a budgeted run consumes only the
// stream's prefix, so the value of the budget depends entirely on how
// well the stream is ordered (progressive blocking, rank fusion).

import (
	"context"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// PairSlice adapts a materialised pair slice to PairStream, so the
// budgeted matcher can consume legacy candidate lists.
type PairSlice []data.Pair

// Len implements PairStream.
func (s PairSlice) Len() int { return len(s) }

// EmitPairs implements PairStream.
func (s PairSlice) EmitPairs(emit func(data.Pair) bool) {
	for _, p := range s {
		if !emit(p) {
			return
		}
	}
}

// RecordIDs implements PairStream.
func (s PairSlice) RecordIDs() []string {
	seen := make(map[string]bool, 2*len(s))
	out := make([]string, 0, 2*len(s))
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, p := range s {
		add(p.A)
		add(p.B)
	}
	sort.Strings(out)
	return out
}

// MatchBudgetedCtx scores at most budget pairs from the front of a
// streamed candidate source — the budgeted progressive matcher. The
// stream is consumed through EmitPairs in bounded batches (a spilled
// set never materialises), stopping as soon as the budget is spent;
// consumed reports how many comparisons actually ran (less than budget
// only when the stream is shorter). budget <= 0 means unlimited, which
// is exactly MatchStreamCtx.
//
// Feature-cache warming is pay-as-you-go too: matchers implementing
// IDIndexPreparer are warmed per batch from the batch's own record IDs,
// so a small budget over a huge stream never tokenises the full corpus.
// Scores are identical either way — the cache is an evaluation detail.
//
// The registry records matching.comparisons/matched as usual, plus the
// recall-at-budget inputs: gauges matching.budget (the configured
// budget), matching.budget_consumed, and matching.budget_match_rate
// (matched ÷ consumed — the observable proxy for recall when truth is
// unknown).
func MatchBudgetedCtx(ctx context.Context, d *data.Dataset, src PairStream, m Matcher, budget, workers int, reg *obs.Registry) (matched []data.ScoredPair, consumed int, err error) {
	reg = obs.OrDefault(reg)
	if budget <= 0 || budget >= src.Len() {
		out, err := MatchStreamCtx(ctx, d, src, m, workers, reg)
		if err != nil {
			return nil, 0, err
		}
		n := src.Len()
		reg.Gauge("matching.budget").Set(float64(budget))
		reg.Gauge("matching.budget_consumed").Set(float64(n))
		if n > 0 {
			reg.Gauge("matching.budget_match_rate").Set(float64(len(out)) / float64(n))
		}
		return out, n, nil
	}
	var out []data.ScoredPair
	batch := make([]data.Pair, 0, min(budget, matchBatch))
	flush := func() bool {
		if len(batch) == 0 || err != nil {
			return err == nil
		}
		switch ip := m.(type) {
		case IDIndexPreparer:
			ip.PrepareIndexIDs(d, PairSlice(batch).RecordIDs())
		case IndexPreparer:
			ip.PrepareIndex(d, batch)
		}
		results := make([]data.ScoredPair, len(batch))
		ok := make([]bool, len(batch))
		err = parallel.ForEach(parallel.Config{Workers: workers, Obs: reg, Ctx: ctx}, len(batch), func(i int) {
			p := batch[i]
			a, b := d.Record(p.A), d.Record(p.B)
			if a == nil || b == nil {
				return
			}
			s, match := m.Match(a, b)
			if match {
				results[i] = data.ScoredPair{Pair: p, Score: s}
				ok[i] = true
			}
		})
		if err != nil {
			return false
		}
		for i, keep := range ok {
			if keep {
				out = append(out, results[i])
			}
		}
		batch = batch[:0]
		return true
	}
	src.EmitPairs(func(p data.Pair) bool {
		batch = append(batch, p)
		consumed++
		if consumed == budget {
			return false
		}
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	})
	flush()
	if err != nil {
		return nil, 0, err
	}
	reg.Counter("matching.comparisons").Add(int64(consumed))
	reg.Counter("matching.matched").Add(int64(len(out)))
	reg.Gauge("matching.budget").Set(float64(budget))
	reg.Gauge("matching.budget_consumed").Set(float64(consumed))
	if consumed > 0 {
		reg.Gauge("matching.budget_match_rate").Set(float64(len(out)) / float64(consumed))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, consumed, nil
}
