package linkage

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// matchWorkload builds the seeded dirty-duplicate corpus used by the
// determinism and cache-equivalence regressions.
func matchWorkload(t testing.TB) (*data.Dataset, []data.Pair) {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: 42, NumEntities: 60, Categories: []string{"camera"},
	})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 43, NumSources: 10, DirtLevel: 2,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(records)
	if len(cands) == 0 {
		t.Fatal("workload produced no candidate pairs")
	}
	return web.Dataset, cands
}

func workloadComparator() *similarity.RecordComparator {
	return similarity.NewRecordComparator(
		similarity.FieldWeight{Attr: "title", Weight: 2, Metric: similarity.Jaccard},
		similarity.FieldWeight{Attr: "camera_brand", Weight: 1, Metric: similarity.Dice},
		similarity.FieldWeight{Attr: "camera_color", Weight: 1},
		similarity.FieldWeight{Attr: "camera_price_usd", Weight: 1},
	)
}

func renderPairs(ps []data.ScoredPair) string {
	s := ""
	for _, p := range ps {
		s += fmt.Sprintf("%s|%s|%.17g\n", p.A, p.B, p.Score)
	}
	return s
}

// TestMatchPairsDeterministicOnSeededWeb is the determinism
// regression: byte-identical results for workers ∈ {1, 4, NumCPU} on a
// seeded corpus, with and without the feature cache.
func TestMatchPairsDeterministicOnSeededWeb(t *testing.T) {
	d, cands := matchWorkload(t)
	for _, variant := range []struct {
		name string
		mk   func() Matcher
	}{
		{"cached", func() Matcher {
			return ThresholdMatcher{Comparator: workloadComparator(), Threshold: 0.6}
		}},
		{"uncached", func() Matcher {
			return NoIndex(ThresholdMatcher{Comparator: workloadComparator(), Threshold: 0.6})
		}},
	} {
		base := renderPairs(MatchPairs(d, cands, variant.mk(), 1))
		if base == "" {
			t.Fatalf("%s: no matches on the seeded corpus", variant.name)
		}
		for _, w := range []int{4, runtime.NumCPU()} {
			if got := renderPairs(MatchPairs(d, cands, variant.mk(), w)); got != base {
				t.Errorf("%s: workers=%d output differs from workers=1", variant.name, w)
			}
		}
	}
}

// TestMatchPairsCachedEqualsUncached: the feature cache is a pure
// optimisation — identical scores and decisions pair for pair.
func TestMatchPairsCachedEqualsUncached(t *testing.T) {
	d, cands := matchWorkload(t)
	cached := MatchPairs(d, cands, ThresholdMatcher{Comparator: workloadComparator(), Threshold: 0.6}, 4)
	uncached := MatchPairs(d, cands, NoIndex(ThresholdMatcher{Comparator: workloadComparator(), Threshold: 0.6}), 4)
	if !reflect.DeepEqual(cached, uncached) {
		t.Errorf("cached (%d pairs) and uncached (%d pairs) results differ", len(cached), len(uncached))
	}
}

// TestMatchPairsAttachesIndex: MatchPairs must prepare the comparator
// index for IndexPreparer matchers and reuse a covering index.
func TestMatchPairsAttachesIndex(t *testing.T) {
	d, cands := matchWorkload(t)
	cmp := workloadComparator()
	MatchPairs(d, cands, ThresholdMatcher{Comparator: cmp, Threshold: 0.6}, 2)
	idx := cmp.Index()
	if idx == nil {
		t.Fatal("MatchPairs did not attach a feature index")
	}
	for _, p := range cands[:10] {
		if !idx.Has(p.A) || !idx.Has(p.B) {
			t.Fatalf("index does not cover candidate pair %v", p)
		}
	}
	// A second batch over the same candidates must reuse the index.
	MatchPairs(d, cands, ThresholdMatcher{Comparator: cmp, Threshold: 0.6}, 2)
	if cmp.Index() != idx {
		t.Error("covering index was rebuilt instead of reused")
	}
}

// TestFellegiSunterCachedEqualsUncached covers the comparison-vector
// path: EM training and posterior scoring give identical results with
// and without the cache.
func TestFellegiSunterCachedEqualsUncached(t *testing.T) {
	d, cands := matchWorkload(t)
	run := func(cache bool) []data.ScoredPair {
		fs := NewFellegiSunter(workloadComparator())
		fs.AgreeAt = 0.7
		fs.Threshold = 0.8
		if !cache {
			// Train attaches the index internally; detach to force the
			// direct path throughout.
			if err := fs.Train(d, cands, 10); err != nil {
				t.Fatal(err)
			}
			fs.Comparator.AttachIndex(nil)
			return MatchPairs(d, cands, NoIndex(fs), 4)
		}
		if err := fs.Train(d, cands, 10); err != nil {
			t.Fatal(err)
		}
		return MatchPairs(d, cands, fs, 4)
	}
	if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
		t.Errorf("FS cached (%d pairs) differs from uncached (%d pairs)", len(got), len(want))
	}
}
