package linkage

import (
	"context"
	"slices"
	"testing"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/similarity"
)

func budgetSample() (*data.Dataset, PairSlice, Matcher) {
	d := linkageSample()
	pairs := PairSlice{
		data.NewPair("a", "b"), // match: near-duplicate titles
		data.NewPair("a", "c"),
		data.NewPair("a", "d"), // match at 0.6
		data.NewPair("b", "c"),
		data.NewPair("b", "d"),
		data.NewPair("c", "d"),
	}
	m := ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.6,
	}
	return d, pairs, m
}

func TestMatchBudgetedStopsAtBudget(t *testing.T) {
	d, pairs, m := budgetSample()
	// Budget 2 covers only the first two stream pairs: (a,b) matches,
	// (a,c) does not.
	out, consumed, err := MatchBudgetedCtx(context.Background(), d, pairs, m, 2, 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 2 {
		t.Fatalf("consumed = %d, want 2", consumed)
	}
	if len(out) != 1 || out[0].Pair != data.NewPair("a", "b") {
		t.Fatalf("matched = %v, want just (a,b)", out)
	}
}

func TestMatchBudgetedUnlimitedEqualsStreamMatcher(t *testing.T) {
	d, pairs, m := budgetSample()
	want, err := MatchStreamCtx(context.Background(), d, pairs, m, 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("stream matcher found nothing")
	}
	for _, budget := range []int{0, -1, len(pairs), len(pairs) + 10} {
		out, consumed, err := MatchBudgetedCtx(context.Background(), d, pairs, m, budget, 1, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(pairs) {
			t.Fatalf("budget %d: consumed = %d, want %d", budget, consumed, len(pairs))
		}
		if !slices.Equal(out, want) {
			t.Fatalf("budget %d: matches diverged from MatchStreamCtx", budget)
		}
	}
}

func TestMatchBudgetedRecordsObsGauges(t *testing.T) {
	d, pairs, m := budgetSample()
	reg := obs.NewRegistry()
	_, consumed, err := MatchBudgetedCtx(context.Background(), d, pairs, m, 3, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("matching.budget").Value(); got != 3 {
		t.Errorf("matching.budget = %v, want 3", got)
	}
	if got := reg.Gauge("matching.budget_consumed").Value(); got != float64(consumed) {
		t.Errorf("matching.budget_consumed = %v, want %d", got, consumed)
	}
}

func TestPairSliceRecordIDs(t *testing.T) {
	s := PairSlice{
		data.NewPair("z", "a"), data.NewPair("a", "m"), data.NewPair("z", "m"),
	}
	got := s.RecordIDs()
	want := []string{"a", "m", "z"}
	if !slices.Equal(got, want) {
		t.Fatalf("RecordIDs = %v, want %v", got, want)
	}
}
