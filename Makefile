GO ?= go

.PHONY: all build vet test race race-blocking race-fusion race-obs race-source race-shard race-rrf race-serve race-stream race-mutate bench bench-blocking bench-fusion bench-obs bench-source bench-stream bench-json loadtest chaos chaos-compact check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-checks the parallel blocking engine and its substrate (PR 2 gate).
race-blocking:
	$(GO) test -race ./internal/blocking/... ./internal/parallel/...

# Race-checks the parallel fusion engine and its substrate (PR 3 gate).
race-fusion:
	$(GO) test -race ./internal/fusion/... ./internal/parallel/...

# Race-checks the observability layer and the instrumented stages
# (PR 4 gate): concurrent metric updates from every worker path.
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/core/... ./internal/linkage/...

# Race-checks the resilient ingestor, the fault injector and the
# context plumbing through the pipeline (PR 5 gate).
race-source:
	$(GO) test -race ./internal/source/... ./internal/parallel/... ./internal/core/...

# The cached-vs-uncached matching benchmarks (PR 1 acceptance numbers).
bench:
	$(GO) test -run xxx -bench 'MatchPairs(Cached|Uncached)$$' -benchmem .

# The blocking-engine benchmarks (PR 2 acceptance numbers).
bench-blocking:
	$(GO) test -run xxx -bench 'BuildBlocks|BlocksPairs|MetaBlocking' -benchmem .

# The fusion-engine benchmarks, seq vs par (PR 3 acceptance numbers).
bench-fusion:
	$(GO) test -run xxx -bench 'ACCUFuse|CopyDetect|FuseACCUCOPY' -benchmem .

# The observability benchmarks (PR 4 acceptance numbers): disabled
# registry vs baseline must show identical allocs/op.
bench-obs:
	$(GO) test -run xxx -bench 'MatchPairs(Cached|ObsDisabled|ObsEnabled)$$' -benchmem .
	$(GO) test -run xxx -bench . -benchmem ./internal/obs/...

# The ingestion benchmarks (PR 5 acceptance numbers): the no-fault
# path must add ~zero allocations per record over direct construction.
bench-source:
	$(GO) test -run xxx -bench 'Ingest' -benchmem ./internal/source/...

# Race-checks the sharded/spilled blocking engine end to end (PR 6
# gate): shard merge, external pair generation and the streaming
# matcher under concurrent workers.
race-shard:
	$(GO) test -race -run 'Shard|Spill|Scale|SortedNeighborhood|UnionCandidates' ./internal/blocking/... ./internal/parallel/... ./internal/core/... ./internal/experiments/...

# Race-checks the rank-fusion kernel and the budgeted progressive
# matcher (PR 7 gate): fused-stream identity across workers × shards,
# the spilled fused path and budget consumption under concurrency.
race-rrf:
	$(GO) test -race -run 'Fuse|Ranked|RRF|Progressive|RecallCurve|Budget' ./internal/blocking/... ./internal/linkage/... ./internal/core/... ./internal/experiments/...

# Race-checks the serving layer end to end (PR 8 gate): concurrent
# handler reads during background snapshot swaps, the bounded reindex
# queue and the memoized query path.
race-serve:
	$(GO) test -race ./internal/serve/... ./internal/core/... ./internal/obs/...

# Race-checks the streaming velocity path end to end (PR 9 gate):
# watchable sources under fault injection, epoch batching, incremental
# linkage, online fusion publishing and the crash/resume chaos replay.
race-stream:
	$(GO) test -race -run 'Watch|Streamer|Stream|Online|Publish' ./internal/source/... ./internal/core/... ./internal/fusion/... ./internal/serve/...

# Race-checks the mutable-stream path (PR 10 gate): typed deltas,
# churn workloads, delta fault mangling, retraction/reclustering,
# tombstones and state compaction — including the serving-layer
# deleted-entities gate.
race-mutate:
	$(GO) test -race -run 'Delta|Churn|Mangle|Retract|IncrementalDelete|Compact|Tombstone|Deleted|StreamState' ./internal/source/... ./internal/linkage/... ./internal/core/... ./internal/serve/...

# The streaming benchmarks (PR 9 acceptance numbers): per-epoch apply
# cost and republish cost on a growing corpus.
bench-stream:
	$(GO) test -run xxx -bench 'StreamApplyEpoch|StreamPublish' -benchmem ./internal/core/...

# The serving latency baseline (PR 8 acceptance numbers): p50/p99 at
# 1/8/64 concurrent clients against an in-process bdiserve.
loadtest:
	$(GO) run ./cmd/bdiserve -gen -gen-entities 100 -gen-sources 20 -loadtest 1x50,8x50,64x50

# The sharded-blocking perf baseline (PR 6 acceptance numbers):
# pair-generation throughput and heap high-water at 1M records under a
# 25% memory budget, written to BENCH_blocking.json — plus the
# rank-fusion recall-at-budget baseline (PR 7 acceptance numbers)
# written to BENCH_progressive.json.
bench-json:
	$(GO) run ./cmd/bdibench -exp E24 -e24-sizes 1000000 -e24-workers 1,2,8 -bench-json BENCH_blocking.json
	$(GO) run ./cmd/bdibench -exp E25 -bench-json BENCH_progressive.json

# Chaos gate: the fault-injection sweep (E23) under the race detector.
chaos:
	$(GO) run -race ./cmd/bdibench -exp E23

# Compaction chaos gate (PR 10): kill-mid-compaction at workers
# {1,2,8} with byte-identity of the restored state, backup-file
# recovery and the codec corruption sweep, all under the race detector.
chaos-compact:
	$(GO) test -race -run 'TestStreamKillMidCompactionChaos|TestStreamStateBackupRecovery|TestStreamStateDecodeRobust|FuzzStreamStateDecode' ./internal/core/...

# Everything the CI gate runs.
check: build vet race
