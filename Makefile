GO ?= go

.PHONY: all build vet test race race-blocking race-fusion bench bench-blocking bench-fusion check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-checks the parallel blocking engine and its substrate (PR 2 gate).
race-blocking:
	$(GO) test -race ./internal/blocking/... ./internal/parallel/...

# Race-checks the parallel fusion engine and its substrate (PR 3 gate).
race-fusion:
	$(GO) test -race ./internal/fusion/... ./internal/parallel/...

# The cached-vs-uncached matching benchmarks (PR 1 acceptance numbers).
bench:
	$(GO) test -run xxx -bench 'MatchPairs(Cached|Uncached)$$' -benchmem .

# The blocking-engine benchmarks (PR 2 acceptance numbers).
bench-blocking:
	$(GO) test -run xxx -bench 'BuildBlocks|BlocksPairs|MetaBlocking' -benchmem .

# The fusion-engine benchmarks, seq vs par (PR 3 acceptance numbers).
bench-fusion:
	$(GO) test -run xxx -bench 'ACCUFuse|CopyDetect|FuseACCUCOPY' -benchmem .

# Everything the CI gate runs.
check: build vet race
