GO ?= go

.PHONY: all build vet test race race-blocking bench bench-blocking check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-checks the parallel blocking engine and its substrate (PR 2 gate).
race-blocking:
	$(GO) test -race ./internal/blocking/... ./internal/parallel/...

# The cached-vs-uncached matching benchmarks (PR 1 acceptance numbers).
bench:
	$(GO) test -run xxx -bench 'MatchPairs(Cached|Uncached)$$' -benchmem .

# The blocking-engine benchmarks (PR 2 acceptance numbers).
bench-blocking:
	$(GO) test -run xxx -bench 'BuildBlocks|BlocksPairs|MetaBlocking' -benchmem .

# Everything the CI gate runs.
check: build vet race
