GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The cached-vs-uncached matching benchmarks (PR 1 acceptance numbers).
bench:
	$(GO) test -run xxx -bench 'MatchPairs(Cached|Uncached)$$' -benchmem .

# Everything the CI gate runs.
check: build vet race
