// Web discovery to integration, end to end: starting from ONE seed
// source, the focused crawler discovers the rest of the (simulated)
// product web by identifier redundancy — head products appear
// everywhere, so searching known identifiers surfaces tail sources —
// filters out noise sites, and hands the discovered corpus straight to
// the integration pipeline.
//
//	go run ./examples/webdiscovery
package main

import (
	"fmt"
	"log"

	bdi "repro"
)

func main() {
	// A product web: 16 sources over 80 camera products, everyone
	// publishing identifiers, plus 16 noise sites (forums, spam) that
	// merely mention identifiers.
	world := bdi.NewWorld(bdi.WorldConfig{Seed: 31, NumEntities: 80, Categories: []string{"camera"}})
	web := bdi.BuildWeb(world, bdi.SourceConfig{
		Seed: 32, NumSources: 16, DirtLevel: 1,
		IdentifierRate: 1.0, HeadFraction: 0.3, TailCoverage: 0.25,
	})
	sim := bdi.BuildSimWeb(web, bdi.SimWebConfig{Seed: 33, NumNoiseSites: 16, NoiseMentions: 3})
	fmt.Printf("simulated web: %d product sites + noise, %d true product sites\n",
		len(sim.Sites), len(sim.ProductSites()))

	// Crawl from a single head seed.
	crawler := bdi.NewSourceCrawler(sim)
	run, err := crawler.Run([]string{"src-000"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiscovery iterations:")
	for _, st := range run.Iterations {
		fmt.Printf("  iter %d: +%2d sites (pool %3d ids)  precision %.3f  recall %.3f\n",
			st.Iteration, len(st.Discovered), st.KnownIDs, st.CumPrecision, st.CumRecall)
	}

	// Hand the discovered corpus to the pipeline.
	d, err := crawler.Dataset(run)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := bdi.NewPipeline(bdi.PipelineConfig{Fuser: "accu", MatchThreshold: 0.72}).Run(d)
	if err != nil {
		log.Fatal(err)
	}
	prf := bdi.EvalClusters(rep.Clusters, d.GroundTruthClusters())
	fmt.Printf("\nintegrated the discovered corpus: %d records -> %d entities, linkage %s\n",
		d.NumRecords(), len(rep.Clusters), prf)
	ents, err := rep.Entities()
	if err != nil {
		log.Fatal(err)
	}
	multi := 0
	for _, e := range ents {
		if len(e.Sources) > 1 {
			multi++
		}
	}
	fmt.Printf("%d of %d entities are corroborated by multiple discovered sources\n", multi, len(ents))
}
