// Catalog integration: hand-written product records from three online
// stores with different schemas and units, composed stage by stage with
// the public API — blocking, rule matching, clustering, linkage-aware
// schema alignment, transform discovery and fusion. This is the
// pipeline of the ICDE 2013 tutorial on a human-readable workload.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	bdi "repro"
)

// store builds one source's records. Each store has its own attribute
// vocabulary and units — the Variety problem in miniature.
func buildDataset() *bdi.Dataset {
	d := bdi.NewDataset()
	for _, s := range []string{"shopzilla", "pricegrab", "megamart"} {
		if err := d.AddSource(&bdi.Source{ID: s, Name: s}); err != nil {
			log.Fatal(err)
		}
	}
	add := func(id, src, title, pid string, fields map[string]bdi.Value) {
		r := bdi.NewRecord(id, src)
		r.Set("title", bdi.StringValue(title))
		if pid != "" {
			r.Set("pid", bdi.StringValue(pid))
		}
		for a, v := range fields {
			r.Set(a, v)
		}
		if err := d.AddRecord(r); err != nil {
			log.Fatal(err)
		}
	}

	// shopzilla: canonical names, grams.
	add("sz1", "shopzilla", "Nova X200 Mirrorless Camera", "NOVA-X200", map[string]bdi.Value{
		"brand": bdi.StringValue("nova"), "weight": bdi.NumberValue(450),
		"color": bdi.StringValue("black"), "price": bdi.NumberValue(899),
	})
	add("sz2", "shopzilla", "Atlas Soundbar 5.1", "ATL-SB51", map[string]bdi.Value{
		"brand": bdi.StringValue("atlas"), "weight": bdi.NumberValue(2300),
		"color": bdi.StringValue("silver"), "price": bdi.NumberValue(349),
	})
	add("sz3", "shopzilla", "Kestrel Trail Watch 2", "KTW-2", map[string]bdi.Value{
		"brand": bdi.StringValue("kestrel"), "weight": bdi.NumberValue(52),
		"color": bdi.StringValue("blue"), "price": bdi.NumberValue(199),
	})

	// pricegrab: renamed attributes, kilograms, one typo'd title.
	add("pg1", "pricegrab", "nova x200 mirorless camera", "NOVA-X200", map[string]bdi.Value{
		"manufacturer": bdi.StringValue("nova"), "item weight": bdi.NumberValue(0.45),
		"colour": bdi.StringValue("black"), "list price": bdi.NumberValue(929),
	})
	add("pg2", "pricegrab", "atlas 5.1 soundbar", "ATL-SB51", map[string]bdi.Value{
		"manufacturer": bdi.StringValue("atlas"), "item weight": bdi.NumberValue(2.3),
		"colour": bdi.StringValue("silver"), "list price": bdi.NumberValue(355),
	})
	add("pg3", "pricegrab", "kestrel trail watch 2", "KTW-2", map[string]bdi.Value{
		"manufacturer": bdi.StringValue("kestrel"), "item weight": bdi.NumberValue(0.052),
		"colour": bdi.StringValue("blue"), "list price": bdi.NumberValue(189),
	})
	add("pg4", "pricegrab", "orion desk lamp led", "ORI-DL1", map[string]bdi.Value{
		"manufacturer": bdi.StringValue("orion"), "item weight": bdi.NumberValue(0.8),
		"colour": bdi.StringValue("white"), "list price": bdi.NumberValue(49),
	})

	// megamart: no identifiers published, wrong price for the camera.
	add("mm1", "megamart", "Nova X200 Camera (Mirrorless)", "", map[string]bdi.Value{
		"brand": bdi.StringValue("nova"), "weight": bdi.NumberValue(455),
		"color": bdi.StringValue("black"), "price": bdi.NumberValue(1099),
	})
	add("mm2", "megamart", "Atlas Soundbar 5.1 Surround", "", map[string]bdi.Value{
		"brand": bdi.StringValue("atlas"), "weight": bdi.NumberValue(2290),
		"color": bdi.StringValue("silver"), "price": bdi.NumberValue(349),
	})
	return d
}

func main() {
	d := buildDataset()
	records := d.Records()

	// --- Blocking: token blocking on titles plus identifier blocking.
	blocks := bdi.BuildBlocks(records, bdi.TokenBlockingKey("title"))
	candidates := blocks.Pairs()
	candidates = append(candidates,
		bdi.StandardBlocking{Key: bdi.ExactBlockingKey("pid")}.Candidates(records)...)
	fmt.Printf("blocking: %d candidate pairs of %d possible\n",
		len(candidates), len(records)*(len(records)-1)/2)

	// --- Matching: identifier equality wins outright; otherwise a
	//     title-similarity threshold.
	matcher := bdi.RuleMatcher{
		Exact:      []string{"pid"},
		Comparator: bdi.UniformComparator(bdi.Jaccard, "title"),
		Threshold:  0.55,
	}
	matched := bdi.MatchPairs(d, candidates, matcher, 2)
	var ids []string
	for _, r := range records {
		ids = append(ids, r.ID)
	}
	clusters := bdi.ConnectedComponents{}.Cluster(ids, matched)
	fmt.Printf("linkage: %d matches -> %d product clusters\n", len(matched), len(clusters))
	for _, cl := range clusters {
		if len(cl) > 1 {
			fmt.Printf("  linked: %v\n", cl)
		}
	}

	// --- Schema alignment: the clusters provide instance evidence that
	//     "weight" and "item weight" correspond despite the g-vs-kg
	//     units, and transform discovery recovers the factor.
	profiles := bdi.AttrProfiler{}.Build(d)
	evidence := bdi.NewLinkageEvidence(d, clusters)
	ms, err := bdi.SchemaAligner{Evidence: evidence.Blend, Threshold: 0.45}.Align(profiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmediated schema:\n%s", ms)
	transforms := bdi.DiscoverTransforms(d, clusters, ms, 2)
	for _, t := range transforms {
		fmt.Printf("unit transform: %s -> %s  x%.4g (support %d)\n", t.From, t.To, t.Scale, t.Support)
	}

	// --- Normalise and fuse: conflicting prices are resolved by vote.
	normalized := bdi.NewSchemaNormalizer(ms, transforms).ApplyAll(d)
	var attrs []string
	for _, ma := range ms.Attrs {
		attrs = append(attrs, ma.Name)
	}
	claims := claimsFrom(normalized, clusters, attrs)
	fuser, err := bdi.BuildFuser("vote")
	if err != nil {
		log.Fatal(err)
	}
	result, err := fuser.Fuse(claims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfused catalog:")
	for _, it := range claims.Items() {
		fmt.Printf("  %-22s = %v\n", it, result.Values[it])
	}
}

// claimsFrom converts linked, normalised records into fusion claims.
func claimsFrom(d *bdi.Dataset, clusters bdi.Clustering, attrs []string) *bdi.ClaimSet {
	cs := bdi.NewClaimSet()
	for ci, cl := range clusters.Normalize() {
		for _, rid := range cl {
			r := d.Record(rid)
			for _, a := range attrs {
				if v := r.Get(a); !v.IsNull() {
					cs.Add(bdi.Claim{
						Item:   bdi.Item{Entity: fmt.Sprintf("product-%d", ci), Attr: a},
						Source: r.SourceID,
						Value:  v,
					})
				}
			}
		}
	}
	return cs
}
