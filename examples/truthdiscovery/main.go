// Truth discovery: conflicting claims about flight arrival times from
// independent trackers plus a cluster of aggregator sites that copy one
// mediocre feed — the Veracity scenario the tutorial motivates. The
// example compares naive voting, TruthFinder, Bayesian source-accuracy
// fusion (ACCU) and copy-aware fusion (ACCUCOPY), and prints the
// detected copying structure.
//
//	go run ./examples/truthdiscovery
package main

import (
	"fmt"
	"log"
	"sort"

	bdi "repro"
)

func main() {
	// A synthetic claims workload mirroring the deep-web flight study:
	// 6 independent trackers of varying accuracy, and 6 aggregators
	// that republish tracker #0's feed (mistakes included).
	cw := bdi.BuildClaims(bdi.ClaimConfig{
		Seed:         7,
		NumItems:     150, // flights
		NumValues:    6,   // possible (wrong) arrival times per flight
		NumSources:   6,
		MinAccuracy:  0.55,
		MaxAccuracy:  0.92,
		NumCopiers:   6,
		CopyRate:     0.95,
		CopierSpread: 1,
	})
	fmt.Printf("claims: %d over %d flights from %d sources (%d copiers)\n\n",
		cw.Claims.Len(), cw.Claims.NumItems(), len(cw.Claims.Sources()), len(cw.CopiesFrom))

	// Fuse with each method and score against the generator's truth.
	for _, name := range []string{"vote", "truthfinder", "accu", "popaccu", "accucopy"} {
		fuser, err := bdi.BuildFuser(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fuser.Fuse(cw.Claims)
		if err != nil {
			log.Fatal(err)
		}
		acc, n := bdi.EvalFusion(res.Values, cw.Claims)
		fmt.Printf("%-12s accuracy %.3f over %d flights\n", name, acc, n)
	}

	// Copy detection: the full ACCUCOPY loop exposes its pairwise
	// copying posteriors.
	res, copies, err := (bdi.ACCUCOPY{}).CopyProbabilities(cw.Claims)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		pair bdi.SourcePair
		p    float64
	}
	var flagged []scored
	for pair, p := range copies {
		if p >= 0.5 {
			flagged = append(flagged, scored{pair, p})
		}
	}
	sort.Slice(flagged, func(i, j int) bool {
		if flagged[i].p != flagged[j].p {
			return flagged[i].p > flagged[j].p
		}
		return flagged[i].pair.A < flagged[j].pair.A
	})
	fmt.Printf("\ndetected copying (posterior >= 0.5):\n")
	for _, s := range flagged {
		truth := ""
		if cw.CopiesFrom[s.pair.A] == s.pair.B || cw.CopiesFrom[s.pair.B] == s.pair.A {
			truth = "  <- true copier edge"
		}
		fmt.Printf("  %s ~ %s  p=%.3f%s\n", s.pair.A, s.pair.B, s.p, truth)
	}

	// Estimated source accuracies vs ground truth.
	fmt.Printf("\nsource accuracy (estimated vs true):\n")
	srcs := cw.Claims.Sources()
	sort.Strings(srcs)
	for _, s := range srcs {
		fmt.Printf("  %-8s est %.3f  true %.3f\n", s, res.SourceAccuracy[s], cw.TrueAccuracy[s])
	}
}
