// Streaming linkage: the Velocity dimension. Records arrive in epoch
// batches; an incremental linker integrates each insert online (cost
// proportional to its blocks, not the corpus), and a temporal matcher
// clusters multi-epoch records of entities whose attributes drift over
// time — comparing against a static matcher that splits them.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	bdi "repro"
)

func main() {
	// --- Part 1: incremental linkage over an arriving stream.
	world := bdi.NewWorld(bdi.WorldConfig{Seed: 11, NumEntities: 120, Categories: []string{"camera"}})
	web := bdi.BuildWeb(world, bdi.SourceConfig{
		Seed: 12, NumSources: 16, DirtLevel: 1,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	all := web.Dataset.Records()

	linker := bdi.NewIncrementalLinker(bdi.TitleTokenKey, bdi.ThresholdMatcher{
		Comparator: bdi.UniformComparator(bdi.Jaccard, "title"),
		Threshold:  0.72,
	})
	const batch = 100
	fmt.Println("incremental linkage over the stream:")
	for start := 0; start < len(all); start += batch {
		end := start + batch
		if end > len(all) {
			end = len(all)
		}
		t0 := time.Now()
		for _, r := range all[start:end] {
			if _, err := linker.Insert(web.Dataset.Source(r.SourceID), r.Clone()); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  +%3d records -> corpus %4d, clusters %4d, %6.1fµs/insert\n",
			end-start, linker.Len(), len(linker.Clusters()),
			float64(time.Since(t0).Microseconds())/float64(end-start))
	}
	prf := bdi.EvalClusters(linker.Clusters(), web.Dataset.GroundTruthClusters())
	fmt.Printf("final stream-linkage quality: %s\n\n", prf)

	// --- Part 2: temporal linkage of evolving entities.
	tw := bdi.BuildTemporal(world, bdi.SourceConfig{
		Seed: 13, NumSources: 4, HeadFraction: 0.8, HeadCoverage: 0.8,
		MinAccuracy: 0.97, MaxAccuracy: 0.99,
		Heterogeneity: -1, IdentifierRate: 0.001,
	}, bdi.TemporalConfig{Seed: 14, Epochs: 5, DriftRate: 0.8, EvolvingFraction: 0.7})
	union := tw.Union()
	fmt.Printf("temporal corpus: %d records over %d epochs (%d evolving entities)\n",
		union.NumRecords(), len(tw.Snapshots), len(tw.Evolving))

	cmp := bdi.NewRecordComparator(
		bdi.FieldWeight{Attr: "title", Weight: 2, Metric: bdi.Jaccard},
		bdi.FieldWeight{Attr: "camera_brand", Weight: 1},
		bdi.FieldWeight{Attr: "camera_color", Weight: 1},
		bdi.FieldWeight{Attr: "camera_weight_g", Weight: 1},
		bdi.FieldWeight{Attr: "camera_price_usd", Weight: 1},
	)
	m := bdi.NewTemporalMatcher(cmp)
	m.Threshold = 0.82
	m.Decay = 0.35
	m.AttrDecay = map[string]float64{"title": 0} // titles never drift

	truth := union.GroundTruthClusters()
	temporalPRF := bdi.EvalClusters(m.Cluster(union.Records()), truth)
	staticPRF := bdi.EvalClusters(m.StaticCluster(union.Records()), truth)
	fmt.Printf("temporal matcher: %s\n", temporalPRF)
	fmt.Printf("static matcher:   %s\n", staticPRF)
	fmt.Println("\n(the static matcher splits entities whose prices and specs drifted;")
	fmt.Println(" time-decayed disagreement keeps their epochs linked)")
}
