// Dataspace-style pay-as-you-go integration: instead of committing to
// one mediated schema up front, build a probabilistic schema ensemble,
// answer attribute-mapping queries under uncertainty, spend a small
// oracle budget on the most uncertain correspondences, fuse online with
// early termination, and query the integrated entities by keyword —
// the "pay-as-you-go" programme the tutorial surveys for web-scale
// Variety.
//
//	go run ./examples/dataspace
package main

import (
	"fmt"
	"log"

	bdi "repro"
)

func main() {
	// A heterogeneous single-category web (heavy renaming + units).
	world := bdi.NewWorld(bdi.WorldConfig{Seed: 21, NumEntities: 40, Categories: []string{"camera"}})
	web := bdi.BuildWeb(world, bdi.SourceConfig{
		Seed: 22, NumSources: 8, DirtLevel: 1,
		Heterogeneity: 0.7, IdentifierRate: 0.95,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	d := web.Dataset
	fmt.Printf("web: %d records from %d sources\n\n", d.NumRecords(), d.NumSources())

	// --- 1. Probabilistic mediated-schema ensemble.
	profiles := bdi.AttrProfiler{}.Build(d)
	ens, err := bdi.BuildSchemaEnsemble(profiles, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema ensemble: %d candidate schemas\n", len(ens.Candidates))
	for i, c := range ens.Candidates {
		fmt.Printf("  candidate %d: P=%.3f, %d mediated attributes\n", i, c.P, len(c.Schema.Attrs))
	}
	// Probabilistic mapping query for one source attribute.
	sample := profiles[0].SourceAttr
	fmt.Printf("\nmapping distribution for %s:\n", sample)
	for _, ans := range ens.MapAttr(sample) {
		fmt.Printf("  -> %q with P=%.3f\n", ans.Mediated, ans.P)
	}

	// --- 2. Pay-as-you-go: a 20-question oracle budget on the most
	//     uncertain correspondences (simulated from generator truth).
	canonical := map[bdi.SourceAttr]string{}
	for _, gs := range web.Sources {
		for canon, local := range gs.Dialect.Rename {
			canonical[bdi.SourceAttr{Source: gs.ID, Attr: local}] = canon
		}
	}
	oracle := func(a, b bdi.SourceAttr) bool {
		return canonical[a] != "" && canonical[a] == canonical[b]
	}
	fb, err := (bdi.SchemaFeedback{Threshold: 0.5, Budget: 20}).Run(profiles, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npay-as-you-go: asked %d questions, schema now has %d mediated attributes\n",
		fb.Questions, len(fb.Schema.Attrs))

	// --- 3. Online fusion with early termination over a claims
	//     workload: answers finalise after probing few sources.
	cw := bdi.BuildClaims(bdi.ClaimConfig{
		Seed: 23, NumItems: 120, NumSources: 12,
		MinAccuracy: 0.5, MaxAccuracy: 0.95,
	})
	on := bdi.OnlineFusion{Accuracy: cw.TrueAccuracy}
	or, err := on.FuseOnline(cw.Claims)
	if err != nil {
		log.Fatal(err)
	}
	var probeSum float64
	for _, p := range or.Probes {
		probeSum += float64(p)
	}
	acc, _ := bdi.EvalFusion(or.Values, cw.Claims)
	fmt.Printf("\nonline fusion: accuracy %.3f probing %.1f of 12 sources on average\n",
		acc, probeSum/float64(len(or.Probes)))

	// --- 4. End-to-end + keyword query over the integrated entities.
	rep, err := bdi.NewPipeline(bdi.PipelineConfig{Fuser: "accu"}).Run(d)
	if err != nil {
		log.Fatal(err)
	}
	ents, err := rep.Entities()
	if err != nil {
		log.Fatal(err)
	}
	query := ents[0].Title
	hits, err := rep.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %q:\n", query)
	for _, h := range hits {
		fmt.Printf("  %.3f  %s  (%d records from %v)\n", h.Score, h.Entity.Title, len(h.Entity.Records), h.Entity.Sources)
	}
}
