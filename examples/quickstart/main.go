// Quickstart: generate a synthetic web of product sources, run the full
// big-data-integration pipeline (blocking → linkage → schema alignment
// → fusion) and print what came out, with quality metrics against the
// generator's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bdi "repro"
)

func main() {
	// 1. A world of 50 products across three categories, and 12 sources
	//    describing them — head and tail, with renamed attributes,
	//    changed units, typos and a couple of copiers.
	world := bdi.NewWorld(bdi.WorldConfig{Seed: 1, NumEntities: 50})
	web := bdi.BuildWeb(world, bdi.SourceConfig{
		Seed:           2,
		NumSources:     12,
		DirtLevel:      1,
		Heterogeneity:  0.5,
		CopierFraction: 0.2,
	})
	fmt.Printf("generated: %d records, %d sources, %d entities\n",
		web.Dataset.NumRecords(), web.Dataset.NumSources(), len(world.Entities))

	// 2. Integrate. The default configuration follows the tutorial's
	//    recommendation: link records first (identifiers + titles), use
	//    the clusters as schema-alignment evidence, then fuse with
	//    copy-aware truth discovery.
	report, err := bdi.NewPipeline(bdi.PipelineConfig{Fuser: "accucopy"}).Run(web.Dataset)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blocking:  %d candidate pairs\n", report.Candidates)
	fmt.Printf("linkage:   %d matches -> %d clusters\n", len(report.Matched), len(report.Clusters))
	fmt.Printf("alignment: %d mediated attributes, %d unit transforms\n",
		len(report.Schema.Attrs), len(report.Transforms))
	fmt.Printf("fusion:    %d claims -> %d fused values\n",
		report.Claims.Len(), len(report.Fusion.Values))

	// 3. Score against ground truth (available because the data is
	//    generated; real deployments obviously skip this).
	prf := bdi.EvalClusters(report.Clusters, web.Dataset.GroundTruthClusters())
	fmt.Printf("linkage quality: %s\n", prf)

	// 4. Peek at one integrated entity: the largest cluster, its
	//    members and a few fused values.
	var biggest bdi.Cluster
	for _, cl := range report.Clusters {
		if len(cl) > len(biggest) {
			biggest = cl
		}
	}
	fmt.Printf("\nlargest cluster (%d records):\n", len(biggest))
	for _, id := range biggest {
		r := web.Dataset.Record(id)
		fmt.Printf("  %-8s %-8s %q\n", r.ID, r.SourceID, r.Get("title"))
	}
}
