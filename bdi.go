// Package bdi is the public facade of a from-scratch Go implementation
// of the big-data-integration pipeline described in Dong & Srivastava's
// ICDE 2013 tutorial "Big Data Integration": record linkage at scale
// (blocking, meta-blocking, probabilistic matching, clustering,
// incremental linkage), schema alignment (probabilistic mediated
// schema, linkage-aware attribute matching, unit-transform discovery)
// and data fusion (voting, TruthFinder, ACCU/POPACCU, copy detection,
// ACCUCOPY), plus the synthetic web-of-sources generator used to
// evaluate them.
//
// The quickest way in is the end-to-end pipeline:
//
//	world := bdi.NewWorld(bdi.WorldConfig{Seed: 1, NumEntities: 100})
//	web := bdi.BuildWeb(world, bdi.SourceConfig{Seed: 2, NumSources: 20})
//	report, err := bdi.NewPipeline(bdi.PipelineConfig{}).Run(web.Dataset)
//
// RunCtx is the context-aware variant: cancellation and deadlines
// (including PipelineConfig.StageTimeout) stop every stage at its next
// chunk boundary. Datasets can also be ingested resiliently from a
// fleet of sources — with retries, circuit breaking and optional
// deterministic fault injection — via NewIngestor and WrapAllFaults.
//
// Individual stages are available through the re-exported constructors
// below; the full machinery lives in the internal packages and is
// exercised by the examples under examples/ and the experiment harness
// in cmd/bdibench.
package bdi

import (
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/source"
	"repro/internal/source/faults"
)

// Data model re-exports.
type (
	// Dataset is a collection of sources and their records.
	Dataset = data.Dataset
	// Record is one source's description of one entity.
	Record = data.Record
	// Source describes one data source.
	Source = data.Source
	// Value is a dynamically typed attribute value.
	Value = data.Value
	// Item identifies one attribute of one entity (a fusion data item).
	Item = data.Item
	// Claim is one (item, source, value) observation.
	Claim = data.Claim
	// ClaimSet is an indexed collection of claims.
	ClaimSet = data.ClaimSet
	// Pair is an unordered pair of record IDs.
	Pair = data.Pair
	// ScoredPair attaches a match score to a pair.
	ScoredPair = data.ScoredPair
	// Cluster is a set of record IDs believed to be one entity.
	Cluster = data.Cluster
	// Clustering is a partition of records into entities.
	Clustering = data.Clustering
)

// Constructors and value helpers.
var (
	// NewDataset returns an empty dataset.
	NewDataset = data.NewDataset
	// NewRecord allocates a record with an empty field map.
	NewRecord = data.NewRecord
	// NewClaimSet returns an empty claim set.
	NewClaimSet = data.NewClaimSet
	// NewPair canonicalises an unordered record-ID pair.
	NewPair = data.NewPair
	// StringValue wraps a string attribute value.
	StringValue = data.String
	// NumberValue wraps a numeric attribute value.
	NumberValue = data.Number
	// BoolValue wraps a boolean attribute value.
	BoolValue = data.Bool
	// TimeValue wraps a timestamp attribute value.
	TimeValue = data.Time
	// ParseValue converts a raw string to the most specific Value.
	ParseValue = data.Parse
	// ReadJSON parses a dataset from its JSON form.
	ReadJSON = data.ReadJSON
	// ReadCSV parses a dataset from its CSV form.
	ReadCSV = data.ReadCSV
)

// Pipeline re-exports.
type (
	// PipelineConfig controls an end-to-end pipeline run.
	PipelineConfig = core.Config
	// Pipeline is the end-to-end integration flow.
	Pipeline = core.Pipeline
	// Report is the full output of a pipeline run.
	Report = core.Report
	// Order selects linkage-first or schema-first stage ordering.
	Order = core.Order
	// Metrics is the observability registry: attach one via
	// PipelineConfig.Obs (or obs.SetDefault) to collect per-stage
	// counters, timers and the stage span tree; export with
	// Snapshot().Stable().Text() / .JSON().
	Metrics = obs.Registry
)

// Pipeline orderings.
const (
	// LinkageFirst links records before aligning schemas (recommended).
	LinkageFirst = core.LinkageFirst
	// SchemaFirst aligns schemas before linking (traditional ordering).
	SchemaFirst = core.SchemaFirst
)

// ZeroThreshold marks a threshold as explicitly zero (the zero value
// of the threshold fields means "use the default").
const ZeroThreshold = core.ZeroThreshold

// Serving re-exports. A pipeline Report materializes one immutable
// Snapshot (entities, inverted token index, feature-index-backed
// comparator) via Report.Snapshot(); ServeServer answers concurrent
// HTTP/JSON queries over it lock-free and swaps rebuilt snapshots in
// atomically behind a bounded reindex queue. cmd/bdiserve is the
// runnable daemon.
type (
	// Snapshot is an immutable, concurrency-safe serving view of an
	// integration run: entity lookup, keyword search, record
	// resolution and similar-entity queries, each index built once.
	Snapshot = core.Snapshot
	// ServeServer is the HTTP integration service over a Snapshot.
	ServeServer = serve.Server
	// ServeConfig tunes the service: reindex queue depth, resolve
	// match threshold, limit caps, metrics registry.
	ServeConfig = serve.Config
	// RebuildFunc produces a fresh Snapshot for the background
	// reindex path.
	RebuildFunc = serve.RebuildFunc
	// LoadConfig drives the in-process load-test driver.
	LoadConfig = serve.LoadConfig
	// LoadResult summarises a load test: errors, p50/p99, QPS.
	LoadResult = serve.LoadResult
)

var (
	// BuildSnapshot materializes a serving snapshot from a report
	// (Report.Snapshot memoizes this per report).
	BuildSnapshot = core.BuildSnapshot
	// NewServer builds the HTTP service around an initial snapshot.
	NewServer = serve.New
	// LoadTest drives concurrent search traffic against a running
	// service and reports latency quantiles.
	LoadTest = serve.LoadTest
)

// DefaultSearchLimit is the hit cap applied when a search limit of 0
// is passed (negative limits are rejected).
const DefaultSearchLimit = core.DefaultSearchLimit

// NewMetrics returns an empty, enabled metrics registry.
var NewMetrics = obs.NewRegistry

// NewPipeline builds a pipeline, resolving config defaults.
func NewPipeline(cfg PipelineConfig) *Pipeline { return core.New(cfg) }

// BuildFuser resolves a fusion method by name: "vote", "truthfinder",
// "accu", "popaccu" or "accucopy".
var BuildFuser = core.BuildFuser

// Resilient ingestion re-exports. Sources flow into the pipeline
// through an Ingestor, which retries transient failures with jittered
// backoff, circuit-breaks persistently failing sources and degrades
// gracefully: the pipeline integrates whatever survived, and the
// IngestReport says exactly what was dropped. The fault injector in
// internal/source/faults wraps any fleet with a deterministic, seeded
// fault schedule for chaos testing.
type (
	// IngestSource is one fetchable data source (data.Source is the
	// static metadata; this is the live endpoint).
	IngestSource = source.Source
	// StaticSource adapts an in-memory record slice to IngestSource.
	StaticSource = source.Static
	// Ingestor fetches a fleet of sources resiliently.
	Ingestor = source.Ingestor
	// IngestConfig tunes retries, backoff, circuit breaking and the
	// minimum surviving-source count.
	IngestConfig = source.IngestConfig
	// IngestReport summarises an ingestion run: per-source outcomes,
	// dropped and degraded source IDs, attempt counts.
	IngestReport = source.Report
	// IngestOutcome is one source's final state after ingestion.
	IngestOutcome = source.Outcome
	// FaultConfig tunes the deterministic fault injector.
	FaultConfig = faults.Config
)

var (
	// NewIngestor builds an ingestor, resolving config defaults.
	NewIngestor = source.NewIngestor
	// SourcesFromDataset adapts a dataset's sources to a static fleet.
	SourcesFromDataset = source.FromDataset
	// SourcesFromWeb adapts a generated web to a static fleet.
	SourcesFromWeb = source.FromWeb
	// WrapFaults wraps one source with a seeded fault injector.
	WrapFaults = faults.Wrap
	// WrapAllFaults wraps a whole fleet with seeded fault injectors.
	WrapAllFaults = faults.WrapAll
)

// Streaming re-exports — the Velocity path. A Streamer batches a fleet
// of watchable sources into deterministic epochs; a Stream folds each
// epoch through incremental linkage and online fusion and republishes
// the serving Snapshot within a configurable staleness window
// (ServeServer.Publish is the intended sink). With StreamConfig.
// StatePath set, the stream persists its full state (cursors, posting
// lists, union-find partition, fusion accuracy estimates) atomically
// every epoch, and ResumeStream continues a killed stream
// byte-identically. cmd/bdirun -stream and cmd/bdiserve -stream are the
// runnable forms; E27 in cmd/bdibench measures the cost advantage over
// batch relinking.
type (
	// StreamConfig tunes the streaming integration processor.
	StreamConfig = core.StreamConfig
	// Stream is the long-lived streaming integration processor.
	Stream = core.Stream
	// StreamEpoch is one deterministic batch of arrivals with resume
	// cursors.
	StreamEpoch = source.Epoch
	// StreamerConfig tunes epoch batching over a fleet.
	StreamerConfig = source.StreamConfig
	// Streamer drains a fleet as a channel of epochs.
	Streamer = source.Streamer
	// StreamWatch polls one source for deterministic cursor windows,
	// refetching through transient faults and truncations.
	StreamWatch = source.Watch
)

var (
	// NewStream builds a fresh streaming processor.
	NewStream = core.NewStream
	// LoadStream restores a streaming processor from a state file.
	LoadStream = core.LoadStream
	// ResumeStream restores from StreamConfig.StatePath when the file
	// exists and starts fresh otherwise.
	ResumeStream = core.ResumeStream
	// NewStreamer starts epoch batching over a fleet.
	NewStreamer = source.NewStreamer
	// NewStreamWatch builds a cursor-window watcher over one source.
	NewStreamWatch = source.NewWatch
	// SourceTotals reads per-source record counts from a dataset — the
	// totals a Streamer needs for static fleets.
	SourceTotals = source.Totals
)

// Mutable-stream re-exports — updates and deletions. Sources can emit
// typed deltas (upsert/delete) instead of bare records; the stream
// retracts deleted records from posting lists and the partition
// (deterministic recluster of the affected component), keeps
// tombstones for crash-safe resume, and compacts its persisted state
// when the tombstone garbage ratio crosses StreamConfig.CompactRatio.
// cmd/bdirun -stream-update-rate/-stream-delete-rate/-compact are the
// runnable forms; E28 in cmd/bdibench is the churn evaluation.
type (
	// Delta is one typed stream mutation: an upsert carrying a record,
	// or a deletion carrying only the record ID.
	Delta = source.Delta
	// DeltaOp discriminates upserts from deletions.
	DeltaOp = source.DeltaOp
	// DeltaSource is a source that exposes its change log as deltas.
	DeltaSource = source.DeltaSource
	// DeltaStatic replays a fixed delta log as a DeltaSource.
	DeltaStatic = source.DeltaStatic
	// DeltaEpoch is one deterministic batch of deltas with resume
	// cursors.
	DeltaEpoch = source.DeltaEpoch
	// DeltaStreamer drains a delta fleet as a channel of epochs.
	DeltaStreamer = source.DeltaStreamer
	// ChurnConfig shapes a synthetic update/delete workload over a
	// dataset (corrupt-then-correct updates, late deletions).
	ChurnConfig = source.ChurnConfig
	// DeltaFaultConfig seeds the delta manglers: duplicate deletes,
	// delete-before-insert, update storms.
	DeltaFaultConfig = faults.DeltaConfig
)

var (
	// UpsertDelta lifts a record into an upsert delta.
	UpsertDelta = source.Upsert
	// DeletionDelta builds a delete delta for a record ID.
	DeletionDelta = source.Deletion
	// AsDeltaSources lifts record sources into upsert-only delta
	// sources.
	AsDeltaSources = source.AsDeltaSources
	// Churn turns a dataset into a churned delta log plus the planned
	// delete set.
	Churn = source.Churn
	// ChurnSources splits a churned dataset into a per-source delta
	// fleet with totals.
	ChurnSources = source.ChurnSources
	// NewDeltaStreamer starts epoch batching over a delta fleet.
	NewDeltaStreamer = source.NewDeltaStreamer
	// WrapDeltaFaults wraps a whole delta fleet with seeded manglers.
	WrapDeltaFaults = faults.WrapDeltasAll
)

// Sentinel errors, re-exported so callers can classify failures with
// errors.Is without importing internal packages.
var (
	// ErrUnknownOrder reports an unrecognised PipelineConfig.Order.
	ErrUnknownOrder = core.ErrUnknownOrder
	// ErrUnknownClusterer reports an unrecognised clusterer name.
	ErrUnknownClusterer = core.ErrUnknownClusterer
	// ErrUnknownFuser reports an unrecognised fusion method name.
	ErrUnknownFuser = core.ErrUnknownFuser
	// ErrNoMatcher reports clustering attempted with a nil matcher.
	ErrNoMatcher = linkage.ErrNoMatcher
	// ErrNilKey reports a blocking pass registered with a nil key func.
	ErrNilKey = blocking.ErrNilKey
	// ErrTransient marks a source failure worth retrying.
	ErrTransient = source.ErrTransient
	// ErrPermanent marks a source failure retries cannot fix.
	ErrPermanent = source.ErrPermanent
	// ErrNoSuchEntity reports a snapshot lookup for an unknown entity.
	ErrNoSuchEntity = core.ErrNoSuchEntity
	// ErrBreakerOpen reports a fetch skipped by an open circuit breaker.
	ErrBreakerOpen = source.ErrBreakerOpen
	// ErrTooFewSources reports ingestion ending below
	// IngestConfig.MinSources; the partial dataset and report are
	// still returned alongside it.
	ErrTooFewSources = source.ErrTooFewSources
	// ErrBadState reports a corrupt, truncated or wrong-version stream
	// state file.
	ErrBadState = core.ErrBadState
	// ErrShortSource reports a source that kept returning fewer records
	// than its declared total through the whole refetch budget.
	ErrShortSource = source.ErrShortSource
)

// Fusion re-exports.
type (
	// Fuser decides the true value of every item in a claim set.
	Fuser = fusion.Fuser
	// FusionResult is the outcome of fusing a claim set.
	FusionResult = fusion.Result
)

// Generator re-exports: the synthetic web of sources.
type (
	// WorldConfig controls entity-universe generation.
	WorldConfig = datagen.WorldConfig
	// World is a generated entity universe.
	World = datagen.World
	// SourceConfig controls the source population laid over a world.
	SourceConfig = datagen.SourceConfig
	// Web is a generated world, source population and emitted dataset.
	Web = datagen.Web
	// ClaimConfig controls direct claim-set generation for fusion.
	ClaimConfig = datagen.ClaimConfig
	// ClaimWorld is a generated claim set with ground truth.
	ClaimWorld = datagen.ClaimWorld
	// TemporalConfig controls multi-epoch snapshot generation.
	TemporalConfig = datagen.TemporalConfig
	// TemporalWorld is a sequence of evolving snapshots.
	TemporalWorld = datagen.TemporalWorld
)

var (
	// NewWorld generates an entity universe.
	NewWorld = datagen.NewWorld
	// BuildWeb lays a source population over a world and emits records.
	BuildWeb = datagen.BuildWeb
	// BuildClaims generates a claim world for fusion experiments.
	BuildClaims = datagen.BuildClaims
	// BuildTemporal evolves a web over multiple epochs.
	BuildTemporal = datagen.BuildTemporal
)

// Evaluation re-exports.
type (
	// PRF bundles precision, recall and F1.
	PRF = eval.PRF
	// BlockingQuality describes a candidate-pair set.
	BlockingQuality = eval.BlockingQuality
)

var (
	// EvalClusters scores a clustering against ground truth pairwise.
	EvalClusters = eval.Clusters
	// EvalPairs scores predicted match pairs against truth pairs.
	EvalPairs = eval.Pairs
	// EvalBlocking computes reduction ratio and pair completeness.
	EvalBlocking = eval.Blocking
	// EvalFusion computes value-level fusion accuracy.
	EvalFusion = eval.FusionAccuracy
)
