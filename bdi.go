// Package bdi is the public facade of a from-scratch Go implementation
// of the big-data-integration pipeline described in Dong & Srivastava's
// ICDE 2013 tutorial "Big Data Integration": record linkage at scale
// (blocking, meta-blocking, probabilistic matching, clustering,
// incremental linkage), schema alignment (probabilistic mediated
// schema, linkage-aware attribute matching, unit-transform discovery)
// and data fusion (voting, TruthFinder, ACCU/POPACCU, copy detection,
// ACCUCOPY), plus the synthetic web-of-sources generator used to
// evaluate them.
//
// The quickest way in is the end-to-end pipeline:
//
//	world := bdi.NewWorld(bdi.WorldConfig{Seed: 1, NumEntities: 100})
//	web := bdi.BuildWeb(world, bdi.SourceConfig{Seed: 2, NumSources: 20})
//	report, err := bdi.NewPipeline(bdi.PipelineConfig{}).Run(web.Dataset)
//
// Individual stages are available through the re-exported constructors
// below; the full machinery lives in the internal packages and is
// exercised by the examples under examples/ and the experiment harness
// in cmd/bdibench.
package bdi

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/obs"
)

// Data model re-exports.
type (
	// Dataset is a collection of sources and their records.
	Dataset = data.Dataset
	// Record is one source's description of one entity.
	Record = data.Record
	// Source describes one data source.
	Source = data.Source
	// Value is a dynamically typed attribute value.
	Value = data.Value
	// Item identifies one attribute of one entity (a fusion data item).
	Item = data.Item
	// Claim is one (item, source, value) observation.
	Claim = data.Claim
	// ClaimSet is an indexed collection of claims.
	ClaimSet = data.ClaimSet
	// Pair is an unordered pair of record IDs.
	Pair = data.Pair
	// ScoredPair attaches a match score to a pair.
	ScoredPair = data.ScoredPair
	// Cluster is a set of record IDs believed to be one entity.
	Cluster = data.Cluster
	// Clustering is a partition of records into entities.
	Clustering = data.Clustering
)

// Constructors and value helpers.
var (
	// NewDataset returns an empty dataset.
	NewDataset = data.NewDataset
	// NewRecord allocates a record with an empty field map.
	NewRecord = data.NewRecord
	// NewClaimSet returns an empty claim set.
	NewClaimSet = data.NewClaimSet
	// NewPair canonicalises an unordered record-ID pair.
	NewPair = data.NewPair
	// StringValue wraps a string attribute value.
	StringValue = data.String
	// NumberValue wraps a numeric attribute value.
	NumberValue = data.Number
	// BoolValue wraps a boolean attribute value.
	BoolValue = data.Bool
	// TimeValue wraps a timestamp attribute value.
	TimeValue = data.Time
	// ParseValue converts a raw string to the most specific Value.
	ParseValue = data.Parse
	// ReadJSON parses a dataset from its JSON form.
	ReadJSON = data.ReadJSON
	// ReadCSV parses a dataset from its CSV form.
	ReadCSV = data.ReadCSV
)

// Pipeline re-exports.
type (
	// PipelineConfig controls an end-to-end pipeline run.
	PipelineConfig = core.Config
	// Pipeline is the end-to-end integration flow.
	Pipeline = core.Pipeline
	// Report is the full output of a pipeline run.
	Report = core.Report
	// Order selects linkage-first or schema-first stage ordering.
	Order = core.Order
	// Metrics is the observability registry: attach one via
	// PipelineConfig.Obs (or obs.SetDefault) to collect per-stage
	// counters, timers and the stage span tree; export with
	// Snapshot().Stable().Text() / .JSON().
	Metrics = obs.Registry
)

// Pipeline orderings.
const (
	// LinkageFirst links records before aligning schemas (recommended).
	LinkageFirst = core.LinkageFirst
	// SchemaFirst aligns schemas before linking (traditional ordering).
	SchemaFirst = core.SchemaFirst
)

// ZeroThreshold marks a threshold as explicitly zero (the zero value
// of the threshold fields means "use the default").
const ZeroThreshold = core.ZeroThreshold

// NewMetrics returns an empty, enabled metrics registry.
var NewMetrics = obs.NewRegistry

// NewPipeline builds a pipeline, resolving config defaults.
func NewPipeline(cfg PipelineConfig) *Pipeline { return core.New(cfg) }

// BuildFuser resolves a fusion method by name: "vote", "truthfinder",
// "accu", "popaccu" or "accucopy".
var BuildFuser = core.BuildFuser

// Fusion re-exports.
type (
	// Fuser decides the true value of every item in a claim set.
	Fuser = fusion.Fuser
	// FusionResult is the outcome of fusing a claim set.
	FusionResult = fusion.Result
)

// Generator re-exports: the synthetic web of sources.
type (
	// WorldConfig controls entity-universe generation.
	WorldConfig = datagen.WorldConfig
	// World is a generated entity universe.
	World = datagen.World
	// SourceConfig controls the source population laid over a world.
	SourceConfig = datagen.SourceConfig
	// Web is a generated world, source population and emitted dataset.
	Web = datagen.Web
	// ClaimConfig controls direct claim-set generation for fusion.
	ClaimConfig = datagen.ClaimConfig
	// ClaimWorld is a generated claim set with ground truth.
	ClaimWorld = datagen.ClaimWorld
	// TemporalConfig controls multi-epoch snapshot generation.
	TemporalConfig = datagen.TemporalConfig
	// TemporalWorld is a sequence of evolving snapshots.
	TemporalWorld = datagen.TemporalWorld
)

var (
	// NewWorld generates an entity universe.
	NewWorld = datagen.NewWorld
	// BuildWeb lays a source population over a world and emits records.
	BuildWeb = datagen.BuildWeb
	// BuildClaims generates a claim world for fusion experiments.
	BuildClaims = datagen.BuildClaims
	// BuildTemporal evolves a web over multiple epochs.
	BuildTemporal = datagen.BuildTemporal
)

// Evaluation re-exports.
type (
	// PRF bundles precision, recall and F1.
	PRF = eval.PRF
	// BlockingQuality describes a candidate-pair set.
	BlockingQuality = eval.BlockingQuality
)

var (
	// EvalClusters scores a clustering against ground truth pairwise.
	EvalClusters = eval.Clusters
	// EvalPairs scores predicted match pairs against truth pairs.
	EvalPairs = eval.Pairs
	// EvalBlocking computes reduction ratio and pair completeness.
	EvalBlocking = eval.Blocking
	// EvalFusion computes value-level fusion accuracy.
	EvalFusion = eval.FusionAccuracy
)
